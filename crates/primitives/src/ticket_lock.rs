//! A strictly FIFO ("fair") mutual-exclusion lock with queued parking and
//! direct lock handoff.
//!
//! The Java SE 5.0 `SynchronousQueue` in fair mode protects its two wait
//! queues with a *fair-mode* `ReentrantLock`. The paper attributes most of
//! that implementation's fair-mode slowdown to this lock: FIFO entry
//! ordering "causes pileups that block the threads that will fulfill waiting
//! threads". To reproduce the effect faithfully our `Java5Fair` baseline
//! needs a lock with the same two properties:
//!
//! 1. **Strict FIFO granting** — waiters acquire in arrival order; and
//! 2. **No barging** — a thread arriving while the lock is held always
//!    queues, even if the holder is just about to release (the lock is
//!    handed *directly* to the queue head, never returned to a free state
//!    while waiters exist).
//!
//! Both properties are exactly what makes fair locks slow under contention,
//! and both are absent from an ordinary (unfair) mutex.
//!
//! The implementation is a classic *ticket lock*: arrival order is fixed by
//! a fetch-and-increment on a `next_ticket` word, and the holder advances a
//! separate `now_serving` word on release. The two counters live on
//! [`CachePadded`] lines of their own — arriving threads hammer
//! `next_ticket` while waiters poll `now_serving`, and sharing one line
//! would make every arrival invalidate every waiter (exactly the
//! false-sharing coupling the paper's contention-freedom property warns
//! about). Waiters spin only until registered, then park; release grants by
//! ticket number, so the handoff is direct and barging is structurally
//! impossible (`try_lock` succeeds only when `next_ticket == now_serving`).

use crate::cache_padded::CachePadded;
use crate::parker::{Parker, Unparker};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// The two counters must not share a cache line (see module docs); padding
// both also keeps the trailing `Mutex` off `now_serving`'s line.
const _: () = assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() >= 128);

/// FIFO-fair ticket lock. See the module docs for why this exists.
///
/// # Examples
///
/// ```
/// use synq_primitives::TicketLock;
///
/// let lock = TicketLock::new();
/// {
///     let _guard = lock.lock();
///     // critical section
/// }
/// assert!(lock.try_lock().is_some());
/// ```
#[derive(Debug)]
pub struct TicketLock {
    /// Next ticket to hand to an arriving thread.
    next_ticket: CachePadded<AtomicUsize>,
    /// Ticket currently allowed to hold the lock.
    now_serving: CachePadded<AtomicUsize>,
    /// Parking registry for tickets that found the lock held.
    waiters: Mutex<VecDeque<(usize, Unparker)>>,
}

/// RAII guard; releasing hands the lock to the next queued ticket, if any.
#[derive(Debug)]
pub struct TicketLockGuard<'a> {
    lock: &'a TicketLock,
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TicketLock {
            next_ticket: CachePadded::new(AtomicUsize::new(0)),
            now_serving: CachePadded::new(AtomicUsize::new(0)),
            waiters: Mutex::new(VecDeque::new()),
        }
    }

    /// Acquires the lock, queuing FIFO behind any existing waiters.
    pub fn lock(&self) -> TicketLockGuard<'_> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::AcqRel);
        synq_obs::probe!(TicketAcquires);
        if self.now_serving.load(Ordering::Acquire) == ticket {
            return TicketLockGuard { lock: self };
        }
        synq_obs::probe!(TicketQueued);
        // Slow path: register, then re-check before parking. The release
        // path stores `now_serving` *before* scanning the registry, so
        // either our registration is seen by the releaser (it unparks us)
        // or our re-check sees the new `now_serving` — never neither.
        let parker = Parker::new();
        self.waiters
            .lock()
            .unwrap()
            .push_back((ticket, parker.unparker()));
        while self.now_serving.load(Ordering::Acquire) != ticket {
            parker.park();
        }
        // Granted. Drop our registry entry if the granter did not (we may
        // have observed `now_serving` before the granter's scan ran).
        self.waiters.lock().unwrap().retain(|(t, _)| *t != ticket);
        TicketLockGuard { lock: self }
    }

    /// Acquires the lock only if it is free *and* no one is queued
    /// (fairness forbids barging past waiters): with tickets both conditions
    /// collapse into `next_ticket == now_serving`, checked by a single CAS.
    pub fn try_lock(&self) -> Option<TicketLockGuard<'_>> {
        let serving = self.now_serving.load(Ordering::Acquire);
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            synq_obs::probe!(TicketAcquires);
            Some(TicketLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Number of threads currently queued for the lock (diagnostic; the
    /// benchmark harness samples this to visualize pileups).
    pub fn queue_len(&self) -> usize {
        let next = self.next_ticket.load(Ordering::Acquire);
        let serving = self.now_serving.load(Ordering::Acquire);
        // One outstanding ticket is the holder; the rest are queued.
        next.wrapping_sub(serving).saturating_sub(1)
    }

    fn unlock(&self) {
        let granted = self.now_serving.load(Ordering::Relaxed).wrapping_add(1);
        self.now_serving.store(granted, Ordering::Release);
        // Scan after the store (see `lock` for the pairing) and hand the
        // wakeup directly to the granted ticket, if it is parked.
        let mut waiters = self.waiters.lock().unwrap();
        if let Some(pos) = waiters.iter().position(|(t, _)| *t == granted) {
            let (_, unparker) = waiters.remove(pos).unwrap();
            drop(waiters);
            unparker.unpark();
        }
    }
}

impl Drop for TicketLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn basic_lock_unlock() {
        let lock = TicketLock::new();
        drop(lock.lock());
        drop(lock.lock());
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = TicketLock::new();
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn counters_live_on_separate_cache_lines() {
        let lock = TicketLock::new();
        let next = &*lock.next_ticket as *const AtomicUsize as usize;
        let serving = &*lock.now_serving as *const AtomicUsize as usize;
        assert!(next.abs_diff(serving) >= 128);
        assert_eq!(next % 128, 0);
        assert_eq!(serving % 128, 0);
    }

    #[test]
    fn mutual_exclusion() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                for _ in 0..300 {
                    let _g = lock.lock();
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    counter.fetch_add(1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 300);
    }

    #[test]
    fn fifo_grant_order() {
        // Hold the lock, queue N threads in a known order, then release and
        // verify they acquire in exactly that order.
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let guard = lock.lock();
        let mut handles = Vec::new();
        for i in 0..6 {
            let lock2 = Arc::clone(&lock);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                let _g = lock2.lock();
                order.lock().unwrap().push(i);
            }));
            // Wait until thread i holds a ticket before spawning i+1 so the
            // arrival order is deterministic.
            while lock.queue_len() < i + 1 {
                thread::yield_now();
            }
        }
        drop(guard);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn no_barging_past_waiters() {
        let lock = Arc::new(TicketLock::new());
        let g = lock.lock();
        let lock2 = Arc::clone(&lock);
        let waiter = thread::spawn(move || {
            let _g = lock2.lock();
        });
        while lock.queue_len() == 0 {
            thread::yield_now();
        }
        // A try_lock while someone is queued must fail even after release,
        // because release hands the lock directly to the waiter.
        drop(g);
        assert!(lock.try_lock().is_none() || lock.queue_len() == 0);
        thread::sleep(Duration::from_millis(5));
        waiter.join().unwrap();
        // Once the queue drains the lock is takable again.
        assert!(lock.try_lock().is_some());
    }
}
