//! A strictly FIFO ("fair") mutual-exclusion lock with queued parking and
//! direct lock handoff.
//!
//! The Java SE 5.0 `SynchronousQueue` in fair mode protects its two wait
//! queues with a *fair-mode* `ReentrantLock`. The paper attributes most of
//! that implementation's fair-mode slowdown to this lock: FIFO entry
//! ordering "causes pileups that block the threads that will fulfill waiting
//! threads". To reproduce the effect faithfully our `Java5Fair` baseline
//! needs a lock with the same two properties:
//!
//! 1. **Strict FIFO granting** — waiters acquire in arrival order; and
//! 2. **No barging** — a thread arriving while the lock is held always
//!    queues, even if the holder is just about to release (the lock is
//!    handed *directly* to the queue head, never returned to a free state
//!    while waiters exist).
//!
//! Both properties are exactly what makes fair locks slow under contention,
//! and both are absent from an ordinary (unfair) mutex.

use crate::parker::{Parker, Unparker};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct WaitNode {
    granted: AtomicBool,
    unparker: Unparker,
}

#[derive(Debug)]
struct Inner {
    locked: bool,
    queue: VecDeque<Arc<WaitNode>>,
}

/// FIFO-fair lock. See the module docs for why this exists.
///
/// # Examples
///
/// ```
/// use synq_primitives::TicketLock;
///
/// let lock = TicketLock::new();
/// {
///     let _guard = lock.lock();
///     // critical section
/// }
/// assert!(lock.try_lock().is_some());
/// ```
#[derive(Debug)]
pub struct TicketLock {
    inner: Mutex<Inner>,
}

/// RAII guard; releasing hands the lock to the next queued waiter, if any.
#[derive(Debug)]
pub struct TicketLockGuard<'a> {
    lock: &'a TicketLock,
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TicketLock {
            inner: Mutex::new(Inner {
                locked: false,
                queue: VecDeque::new(),
            }),
        }
    }

    /// Acquires the lock, queuing FIFO behind any existing waiters.
    pub fn lock(&self) -> TicketLockGuard<'_> {
        let mut inner = self.inner.lock().unwrap();
        if !inner.locked {
            debug_assert!(inner.queue.is_empty());
            inner.locked = true;
            return TicketLockGuard { lock: self };
        }
        let parker = Parker::new();
        let node = Arc::new(WaitNode {
            granted: AtomicBool::new(false),
            unparker: parker.unparker(),
        });
        inner.queue.push_back(Arc::clone(&node));
        drop(inner);
        while !node.granted.load(Ordering::Acquire) {
            parker.park();
        }
        // Ownership was handed to us directly by the releasing thread.
        TicketLockGuard { lock: self }
    }

    /// Acquires the lock only if it is free *and* no one is queued
    /// (fairness forbids barging past waiters).
    pub fn try_lock(&self) -> Option<TicketLockGuard<'_>> {
        let mut inner = self.inner.lock().unwrap();
        if !inner.locked {
            debug_assert!(inner.queue.is_empty());
            inner.locked = true;
            Some(TicketLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Number of threads currently queued for the lock (diagnostic; the
    /// benchmark harness samples this to visualize pileups).
    pub fn queue_len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    fn unlock(&self) {
        let mut inner = self.inner.lock().unwrap();
        debug_assert!(inner.locked);
        if let Some(node) = inner.queue.pop_front() {
            // Direct handoff: `locked` stays true on behalf of the waiter.
            node.granted.store(true, Ordering::Release);
            node.unparker.unpark();
        } else {
            inner.locked = false;
        }
    }
}

impl Drop for TicketLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn basic_lock_unlock() {
        let lock = TicketLock::new();
        drop(lock.lock());
        drop(lock.lock());
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = TicketLock::new();
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(thread::spawn(move || {
                for _ in 0..300 {
                    let _g = lock.lock();
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    counter.fetch_add(1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 300);
    }

    #[test]
    fn fifo_grant_order() {
        // Hold the lock, queue N threads in a known order, then release and
        // verify they acquire in exactly that order.
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let guard = lock.lock();
        let mut handles = Vec::new();
        for i in 0..6 {
            let lock2 = Arc::clone(&lock);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                let _g = lock2.lock();
                order.lock().unwrap().push(i);
            }));
            // Wait until thread i is queued before spawning i+1 so the
            // arrival order is deterministic.
            while lock.queue_len() < i + 1 {
                thread::yield_now();
            }
        }
        drop(guard);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn no_barging_past_waiters() {
        let lock = Arc::new(TicketLock::new());
        let g = lock.lock();
        let lock2 = Arc::clone(&lock);
        let waiter = thread::spawn(move || {
            let _g = lock2.lock();
        });
        while lock.queue_len() == 0 {
            thread::yield_now();
        }
        // A try_lock while someone is queued must fail even after release,
        // because release hands the lock directly to the waiter.
        drop(g);
        thread::sleep(Duration::from_millis(5));
        waiter.join().unwrap();
        // Once the queue drains the lock is takable again.
        assert!(lock.try_lock().is_some());
    }
}
