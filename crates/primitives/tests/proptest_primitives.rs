//! Property tests for the scheduling primitives.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use synq_primitives::{FastSemaphore, Parker, Semaphore, WaitSlot, MIN_TOKEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially, a semaphore is just a counter: any interleaving of
    /// releases and try_acquires must agree with the integer model.
    #[test]
    fn semaphore_matches_counter_model(
        initial in 0i64..5,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let sem = Semaphore::new(initial);
        let mut model = initial;
        for release in ops {
            if release {
                sem.release();
                model += 1;
            } else {
                let got = sem.try_acquire();
                prop_assert_eq!(got, model > 0);
                if got {
                    model -= 1;
                }
            }
        }
        prop_assert_eq!(sem.available(), model);
    }

    /// The fast-path semaphore must satisfy the same model.
    #[test]
    fn fast_semaphore_matches_counter_model(
        initial in 0i64..5,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let sem = FastSemaphore::new(initial);
        let mut model = initial;
        for release in ops {
            if release {
                sem.release();
                model += 1;
            } else {
                let got = sem.try_acquire();
                prop_assert_eq!(got, model > 0);
                if got {
                    model -= 1;
                }
            }
        }
        prop_assert_eq!(sem.permits(), model);
    }

    /// `WaitSlot` state machine vs. a reference model, under arbitrary
    /// interleavings of fulfiller visits, token fulfillments, cancels,
    /// re-arms, and recycles, with drop-counting payloads: every CAS
    /// outcome must match the model, the observable state word must track
    /// it, and every payload ever created must drop exactly once.
    #[test]
    fn wait_slot_matches_state_model(
        starts_armed in any::<bool>(),
        ops in proptest::collection::vec(0u8..5, 0..60),
    ) {
        use synq_primitives::wait_slot::{CANCELLED, CLAIMED, MATCHED, WAITING};

        /// Payload that counts its own drops.
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let mut created = 0usize;
        let mut new_payload = || {
            created += 1;
            Counted(Arc::clone(&drops))
        };

        // Reference model of the protocol.
        let mut state = WAITING;      // expected state word
        let mut filled = false;       // an initialized T was written
        let mut consumed = false;     // ...and moved back out
        let has_item = |filled: bool, consumed: bool| filled && !consumed;

        let mut slot: WaitSlot<Counted> = if starts_armed {
            filled = true;
            WaitSlot::with_item(new_payload())
        } else {
            WaitSlot::new()
        };

        for op in ops {
            match op {
                // A fulfiller visit: claim, move the item (taking a data
                // node's payload or depositing into a request node), and
                // complete. Must succeed exactly when the slot is WAITING.
                0 => {
                    let won = slot.try_claim();
                    prop_assert_eq!(won, state == WAITING);
                    if won {
                        if has_item(filled, consumed) {
                            drop(unsafe { slot.take_item() });
                            consumed = true;
                        } else if !filled {
                            unsafe { slot.put_item(new_payload()) };
                            filled = true;
                        }
                        slot.complete();
                        state = MATCHED;
                    }
                }
                // A stack-style one-shot token fulfillment.
                1 => {
                    let res = slot.try_fulfill_token(MIN_TOKEN);
                    if state == WAITING {
                        prop_assert_eq!(res, Ok(()));
                        state = MIN_TOKEN;
                    } else {
                        prop_assert_eq!(res, Err(state));
                    }
                }
                // The waiter's cancel CAS; a winner reclaims its item.
                2 => {
                    let won = slot.try_cancel();
                    prop_assert_eq!(won, state == WAITING);
                    if won {
                        state = CANCELLED;
                        if has_item(filled, consumed) {
                            drop(unsafe { slot.take_item() });
                            consumed = true;
                        }
                    }
                }
                // The waiter (or a matched party) collects the payload.
                3 => {
                    if (state == MATCHED || state >= MIN_TOKEN) && has_item(filled, consumed) {
                        drop(unsafe { slot.take_item() });
                        consumed = true;
                    }
                }
                // Node-cache recycle: anything pending is dropped, the
                // protocol re-arms from scratch.
                _ => {
                    slot.reset();
                    state = WAITING;
                    filled = false;
                    consumed = false;
                }
            }
            prop_assert_eq!(slot.state(), state);
            prop_assert_eq!(slot.has_item(), has_item(filled, consumed));
            prop_assert!(state != CLAIMED, "ops above never end mid-claim");
        }

        drop(slot);
        prop_assert_eq!(
            drops.load(Ordering::Relaxed),
            created,
            "every payload must drop exactly once"
        );
    }

    /// Parker permit protocol: after any sequence of unparks (N ≥ 1
    /// banked at most one permit) a park returns immediately exactly once.
    #[test]
    fn parker_banks_at_most_one_permit(unparks in 1usize..6) {
        let p = Parker::new();
        let u = p.unparker();
        for _ in 0..unparks {
            u.unpark();
        }
        // One immediate success…
        prop_assert!(p.park_timeout(Duration::from_secs(5)));
        // …and nothing banked beyond it.
        prop_assert!(!p.park_timeout(Duration::from_millis(1)));
    }
}

/// Concurrent semaphore torture: permits are conserved across arbitrary
/// acquire/release traffic (run outside proptest: threads inside generated
/// cases are slow).
#[test]
fn semaphore_conserves_permits_concurrently() {
    for make in [0, 1] {
        enum AnySem {
            Plain(Semaphore),
            Fast(FastSemaphore),
        }
        impl AnySem {
            fn acquire(&self) {
                match self {
                    AnySem::Plain(s) => s.acquire(),
                    AnySem::Fast(s) => s.acquire(),
                }
            }
            fn release(&self) {
                match self {
                    AnySem::Plain(s) => s.release(),
                    AnySem::Fast(s) => s.release(),
                }
            }
            fn permits(&self) -> i64 {
                match self {
                    AnySem::Plain(s) => s.available(),
                    AnySem::Fast(s) => s.permits(),
                }
            }
        }
        let sem = Arc::new(if make == 0 {
            AnySem::Plain(Semaphore::new(3))
        } else {
            AnySem::Fast(FastSemaphore::new(3))
        });
        let mut handles = Vec::new();
        for _ in 0..6 {
            let sem = Arc::clone(&sem);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    sem.acquire();
                    sem.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sem.permits(), 3, "variant {make}");
    }
}
