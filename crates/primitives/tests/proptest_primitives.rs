//! Property tests for the scheduling primitives.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use synq_primitives::{FastSemaphore, Parker, Semaphore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially, a semaphore is just a counter: any interleaving of
    /// releases and try_acquires must agree with the integer model.
    #[test]
    fn semaphore_matches_counter_model(
        initial in 0i64..5,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let sem = Semaphore::new(initial);
        let mut model = initial;
        for release in ops {
            if release {
                sem.release();
                model += 1;
            } else {
                let got = sem.try_acquire();
                prop_assert_eq!(got, model > 0);
                if got {
                    model -= 1;
                }
            }
        }
        prop_assert_eq!(sem.available(), model);
    }

    /// The fast-path semaphore must satisfy the same model.
    #[test]
    fn fast_semaphore_matches_counter_model(
        initial in 0i64..5,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let sem = FastSemaphore::new(initial);
        let mut model = initial;
        for release in ops {
            if release {
                sem.release();
                model += 1;
            } else {
                let got = sem.try_acquire();
                prop_assert_eq!(got, model > 0);
                if got {
                    model -= 1;
                }
            }
        }
        prop_assert_eq!(sem.permits(), model);
    }

    /// Parker permit protocol: after any sequence of unparks (N ≥ 1
    /// banked at most one permit) a park returns immediately exactly once.
    #[test]
    fn parker_banks_at_most_one_permit(unparks in 1usize..6) {
        let p = Parker::new();
        let u = p.unparker();
        for _ in 0..unparks {
            u.unpark();
        }
        // One immediate success…
        prop_assert!(p.park_timeout(Duration::from_secs(5)));
        // …and nothing banked beyond it.
        prop_assert!(!p.park_timeout(Duration::from_millis(1)));
    }
}

/// Concurrent semaphore torture: permits are conserved across arbitrary
/// acquire/release traffic (run outside proptest: threads inside generated
/// cases are slow).
#[test]
fn semaphore_conserves_permits_concurrently() {
    for make in [0, 1] {
        enum AnySem {
            Plain(Semaphore),
            Fast(FastSemaphore),
        }
        impl AnySem {
            fn acquire(&self) {
                match self {
                    AnySem::Plain(s) => s.acquire(),
                    AnySem::Fast(s) => s.acquire(),
                }
            }
            fn release(&self) {
                match self {
                    AnySem::Plain(s) => s.release(),
                    AnySem::Fast(s) => s.release(),
                }
            }
            fn permits(&self) -> i64 {
                match self {
                    AnySem::Plain(s) => s.available(),
                    AnySem::Fast(s) => s.permits(),
                }
            }
        }
        let sem = Arc::new(if make == 0 {
            AnySem::Plain(Semaphore::new(3))
        } else {
            AnySem::Fast(FastSemaphore::new(3))
        });
        let mut handles = Vec::new();
        for _ in 0..6 {
            let sem = Arc::clone(&sem);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    sem.acquire();
                    sem.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sem.permits(), 3, "variant {make}");
    }
}
