//! Pinning guards.

use crate::atomic::Shared;
use crate::deferred::Deferred;
use crate::internal::Local;
use std::fmt;
use std::ptr;

/// A witness that the current thread is pinned.
///
/// While a `Guard` is alive, the global epoch cannot advance more than one
/// step past the epoch observed at pin time, so any [`Shared`] pointer
/// loaded through it remains valid (not freed) for the guard's lifetime.
///
/// Dropping the guard unpins the thread (when the last nested guard goes).
pub struct Guard {
    /// Owning participant record; null for [`unprotected`] guards.
    pub(crate) local: *const Local,
}

impl Guard {
    /// Defers an arbitrary closure until no pinned thread can hold
    /// references obtained before this point.
    ///
    /// # Safety
    ///
    /// The closure must be safe to run on any thread, at any later time —
    /// in particular it must not capture references that could dangle by
    /// then (raw pointers whose targets outlive the deferral are the
    /// intended cargo). On an [`unprotected`] guard the closure runs
    /// immediately (exclusive access implies no grace period is needed).
    pub unsafe fn defer_unchecked<F: FnOnce()>(&self, f: F) {
        match unsafe { self.local.as_ref() } {
            Some(local) => local.defer(Deferred::new(f)),
            None => f(),
        }
    }

    /// Defers dropping the heap allocation behind `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`crate::Owned::new`] (or
    /// equivalent `Box` allocation), must be unlinked from the structure so
    /// no *new* references can be created, and must not be destroyed twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as usize;
        // SAFETY: per caller contract; the closure only runs once the grace
        // period has elapsed.
        unsafe {
            self.defer_unchecked(move || {
                drop(Box::from_raw(raw as *mut T));
            });
        }
    }

    /// Seals this thread's garbage bag and runs a collection cycle.
    /// No-op on an unprotected guard.
    pub fn flush(&self) {
        // SAFETY: local is either null or valid for the guard's lifetime.
        if let Some(local) = unsafe { self.local.as_ref() } {
            local.flush();
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // SAFETY: non-null local outlives its guards.
        if let Some(local) = unsafe { self.local.as_ref() } {
            local.unpin();
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Guard { .. }")
    }
}

/// Returns a dummy guard that performs no pinning and runs deferred
/// closures immediately.
///
/// # Safety
///
/// Usable only when the caller has exclusive access to the data structure
/// (e.g. inside `Drop` or when holding `&mut`), because loads through this
/// guard are not protected by any grace period.
pub unsafe fn unprotected() -> Guard {
    Guard { local: ptr::null() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn unprotected_defer_runs_immediately() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        // SAFETY: no shared structure involved.
        let guard = unsafe { unprotected() };
        unsafe {
            guard.defer_unchecked(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        guard.flush(); // no-op, must not crash
    }
}
