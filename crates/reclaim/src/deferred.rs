//! Type-erased deferred closures.
//!
//! A `Deferred` stores an arbitrary `FnOnce()` without allocating when the
//! closure fits in three words (the common case: "free this node pointer").
//! Larger closures spill to a `Box`. This mirrors crossbeam-epoch's design;
//! avoiding an allocation per retired node matters because retirement sits
//! on the queue's per-transfer path.

use std::fmt;
use std::mem::{self, MaybeUninit};
use std::ptr;

/// Number of words of inline closure storage.
const DATA_WORDS: usize = 3;

type Data = [usize; DATA_WORDS];

/// A boxed-or-inline `FnOnce()` that can be called exactly once.
pub(crate) struct Deferred {
    call: unsafe fn(*mut u8),
    data: MaybeUninit<Data>,
}

impl fmt::Debug for Deferred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Deferred { .. }")
    }
}

// SAFETY: the closure is required to be Send at construction (enforced by
// the caller contract of `Deferred::new` — see `Guard::defer_unchecked`).
unsafe impl Send for Deferred {}

impl Deferred {
    /// Wraps `f`. The caller promises `f` is safe to call from any thread
    /// (the public API funnels through `unsafe` guard methods that state
    /// this requirement).
    pub(crate) fn new<F: FnOnce()>(f: F) -> Self {
        let size = mem::size_of::<F>();
        let align = mem::align_of::<F>();

        if size <= mem::size_of::<Data>() && align <= mem::align_of::<Data>() {
            let mut data = MaybeUninit::<Data>::uninit();
            // SAFETY: F fits in Data with compatible alignment; we write it
            // and never touch it again until `call` reads it back out.
            unsafe {
                ptr::write(data.as_mut_ptr().cast::<F>(), f);
            }

            unsafe fn call<F: FnOnce()>(raw: *mut u8) {
                // SAFETY: `raw` points at the inline storage holding F,
                // written by `new`; we move it out and call it once.
                let f: F = unsafe { ptr::read(raw.cast::<F>()) };
                f();
            }

            Deferred {
                call: call::<F>,
                data,
            }
        } else {
            let b: Box<F> = Box::new(f);
            let mut data = MaybeUninit::<Data>::uninit();
            // SAFETY: a thin Box pointer always fits in one word.
            unsafe {
                ptr::write(data.as_mut_ptr().cast::<Box<F>>(), b);
            }

            unsafe fn call<F: FnOnce()>(raw: *mut u8) {
                // SAFETY: `raw` holds the Box<F> written by `new`.
                let b: Box<F> = unsafe { ptr::read(raw.cast::<Box<F>>()) };
                (*b)();
            }

            Deferred {
                call: call::<F>,
                data,
            }
        }
    }

    /// Runs the deferred closure, consuming it.
    pub(crate) fn call(mut self) {
        let call = self.call;
        // SAFETY: `self` is consumed, so the closure is called exactly once.
        unsafe { call(self.data.as_mut_ptr().cast::<u8>()) };
        mem::forget(self);
    }
}

impl Drop for Deferred {
    fn drop(&mut self) {
        // A Deferred that is dropped without being called would leak the
        // closure's captures. This only happens if a Bag is dropped without
        // running (we never do — Bag::drop calls everything), but guard
        // against it by running the closure here too.
        let call = self.call;
        // SAFETY: drop runs at most once and `call` consumes the storage.
        unsafe { call(self.data.as_mut_ptr().cast::<u8>()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_closure_runs_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let d = Deferred::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        d.call();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn large_closure_spills_to_box_and_runs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let big = [7usize; 16];
        let d = Deferred::new(move || {
            c.fetch_add(big.iter().sum::<usize>(), Ordering::SeqCst);
        });
        d.call();
        assert_eq!(counter.load(Ordering::SeqCst), 7 * 16);
    }

    #[test]
    fn drop_without_call_still_runs_closure() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let d = Deferred::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        drop(d);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn captures_are_dropped_exactly_once() {
        struct DropCount(Arc<AtomicUsize>);
        impl Drop for DropCount {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let payload = DropCount(Arc::clone(&drops));
        let d = Deferred::new(move || {
            let _keep = &payload;
        });
        d.call();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
