//! Epoch-based memory reclamation for lock-free data structures.
//!
//! The PPoPP 2006 synchronous queue algorithms were written for the JVM,
//! whose garbage collector silently solves the hardest problem in lock-free
//! programming: a node unlinked from a structure may still be *reachable* by
//! threads that obtained a reference before the unlink, so it cannot be
//! freed immediately. This crate rebuilds that substrate for Rust as
//! three-epoch deferred reclamation in the style of crossbeam-epoch:
//!
//! * Threads **pin** the current epoch before touching shared nodes and
//!   unpin when done ([`pin`] returns a [`Guard`]).
//! * Unlinked nodes (or arbitrary cleanup closures) are **deferred** on the
//!   guard; they are collected into per-thread bags, sealed with the global
//!   epoch, and executed only once **two epoch advances** have occurred —
//!   by which time every thread that was pinned at unlink time has unpinned,
//!   so no references can remain.
//! * The global epoch **advances** only when every currently pinned thread
//!   has observed it, making the grace period sound.
//!
//! The pointer types ([`Atomic`], [`Owned`], [`Shared`]) carry **tag bits**
//! in the pointer's alignment bits — the facility the paper's authors wished
//! for in Java ("Java does not allow us to set flag bits in pointers") and
//! worked around with an extra mode word per node.
//!
//! # Example
//!
//! ```
//! use synq_reclaim::{self as epoch, Atomic, Owned};
//! use std::sync::atomic::Ordering;
//!
//! let a = Atomic::new(1234);
//! let guard = epoch::pin();
//! let p = a.load(Ordering::Acquire, &guard);
//! assert_eq!(unsafe { p.as_ref() }, Some(&1234));
//! // Replace and defer destruction of the old value:
//! let old = a.swap(Owned::new(5678), Ordering::AcqRel, &guard);
//! unsafe { guard.defer_destroy(old) };
//! # drop(guard);
//! # unsafe { drop(a.into_owned()) };
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod atomic;
mod bag;
mod collector;
mod default;
mod deferred;
mod guard;
mod internal;

pub use atomic::{Atomic, CompareExchangeError, Owned, Pointer, Shared};
pub use collector::{Collector, LocalHandle};
pub use default::{default_collector, pin};
pub use guard::{unprotected, Guard};
