//! Epoch-based memory reclamation for lock-free data structures.
//!
//! The PPoPP 2006 synchronous queue algorithms were written for the JVM,
//! whose garbage collector silently solves the hardest problem in lock-free
//! programming: a node unlinked from a structure may still be *reachable* by
//! threads that obtained a reference before the unlink, so it cannot be
//! freed immediately. This crate rebuilds that substrate for Rust as
//! three-epoch deferred reclamation in the style of crossbeam-epoch:
//!
//! * Threads **pin** the current epoch before touching shared nodes and
//!   unpin when done ([`pin`] returns a [`Guard`]).
//! * Unlinked nodes (or arbitrary cleanup closures) are **deferred** on the
//!   guard; they are collected into per-thread bags, sealed with the global
//!   epoch, and executed only once **two epoch advances** have occurred —
//!   by which time every thread that was pinned at unlink time has unpinned,
//!   so no references can remain.
//! * The global epoch **advances** only when every currently pinned thread
//!   has observed it, making the grace period sound.
//!
//! The pointer types ([`Atomic`], [`Owned`], [`Shared`]) carry **tag bits**
//! in the pointer's alignment bits — the facility the paper's authors wished
//! for in Java ("Java does not allow us to set flag bits in pointers") and
//! worked around with an extra mode word per node.
//!
//! # Pluggable backends
//!
//! The epoch scheme above is now one implementation of the [`Reclaimer`]
//! trait family ([`Reclaimer`] + [`Shield`], see [`reclaimer`]); the
//! [`Hazard`] backend trades slower protected loads for a **bounded**
//! garbage population even when a reader stalls forever mid-critical
//! section. Structures select a backend with a type parameter that
//! defaults to [`Epoch`], so `Atomic<T>` and every pre-trait caller
//! compile unchanged.
//!
//! # Example (default epoch backend)
//!
//! ```
//! use synq_reclaim::{self as epoch, Atomic, Owned};
//! use std::sync::atomic::Ordering;
//!
//! let a: Atomic<i32> = Atomic::new(1234);
//! let guard = epoch::pin();
//! let p = a.load(Ordering::Acquire, &guard);
//! assert_eq!(unsafe { p.as_ref() }, Some(&1234));
//! // Replace and defer destruction of the old value:
//! let old = a.swap(Owned::new(5678), Ordering::AcqRel, &guard);
//! unsafe { guard.defer_destroy(old) };
//! # drop(guard);
//! # unsafe { drop(a.into_owned()) };
//! ```
//!
//! # Example (trait-generic code, hazard backend)
//!
//! ```
//! use synq_reclaim::{Atomic, Hazard, Owned, Reclaimer, Shield};
//! use std::sync::atomic::Ordering;
//!
//! fn replace<R: Reclaimer>(a: &Atomic<i32, R>, value: i32) {
//!     let guard = R::pin();
//!     let old = a.swap(Owned::new(value), Ordering::AcqRel, &guard);
//!     // Retire through the trait: hazard keys its scan on the address.
//!     let raw = old.as_raw() as usize;
//!     unsafe { guard.defer_retire(raw, move || drop(Box::from_raw(raw as *mut i32))) };
//! }
//!
//! let a: Atomic<i32, Hazard> = Atomic::new(1);
//! replace(&a, 2);
//! let guard = Hazard::pin();
//! let p = a.load(Ordering::Acquire, &guard);
//! assert_eq!(unsafe { p.as_ref() }, Some(&2));
//! # drop(guard);
//! # unsafe { drop(a.into_owned()) };
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod atomic;
mod bag;
mod collector;
mod default;
mod deferred;
mod guard;
mod hazard;
mod internal;
pub mod reclaimer;

pub use atomic::{Atomic, CompareExchangeError, Owned, Pointer, Shared};
pub use collector::{Collector, LocalHandle};
pub use default::{default_collector, pin};
pub use guard::{unprotected, Guard};
pub use hazard::{Hazard, HazardGuard, SCAN_THRESHOLD, SLOTS_PER_RECORD};
pub use reclaimer::{Epoch, Reclaimer, Shield, SLOT_WINDOW};
