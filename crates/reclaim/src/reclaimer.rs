//! The backend-agnostic reclamation vocabulary: [`Reclaimer`] and
//! [`Shield`].
//!
//! Every lock-free structure in the workspace used to be hard-wired to this
//! crate's epoch collector. Brown's "Reclaiming memory for lock-free data
//! structures: there has to be a better way" (PAPERS.md) spells out why that
//! is a liability for long-running processes: one stalled thread holding a
//! pin blocks *every* epoch advance, so the retire lists of all other
//! threads grow without bound. Hazard pointers bound garbage per thread but
//! tax every pointer load with a store + fence. Neither dominates — so the
//! choice becomes a type parameter.
//!
//! The split mirrors the two roles of the epoch API:
//!
//! * [`Reclaimer`] is the *scheme* — a zero-sized marker type ([`Epoch`],
//!   [`crate::Hazard`]) with associated entry points (`pin`, `unprotected`)
//!   and a process-wide garbage ledger (`pending`, `peak_pending`) that the
//!   stalled-thread bench reads.
//! * [`Shield`] is the *critical-section witness* — what a concrete guard
//!   type implements so [`crate::Atomic::load`] can route pointer
//!   protection through it. For the epoch backend `protect` is a plain
//!   load (the pin already protects everything); for hazard pointers it is
//!   the publish-and-revalidate loop.
//!
//! # Ordering and validation contract
//!
//! `protect` guarantees: *at some instant during the call, `src` held the
//! returned word while the protection for its (untagged) address was
//! globally visible*. For a `src` that is a **structure field** (a queue's
//! `head`/`tail`), that instant proves the pointee was not yet retired —
//! retirement always follows the CAS that unlinks it — so the result may be
//! dereferenced directly.
//!
//! For a `src` that is a **node field** (`node.next`), the instant proves
//! nothing by itself: the node chain beyond a retired-but-protected node is
//! frozen, so the re-read can succeed long after the successor was retired
//! and even freed. Callers must therefore re-validate a structure field
//! (re-load `head`/`tail` and compare, or succeed a CAS on it) *after* the
//! `protect` call and *before* dereferencing — exactly the Michael&Scott
//! consistency checks the synchronous-queue loops already perform. The
//! publish side of `protect` ends in a `SeqCst` fence and the hazard scan
//! begins with one, so the classic two-fence (Dekker) argument applies to
//! that later validating load as well.
//!
//! Values obtained *without* `protect` — `swap` results and
//! [`crate::CompareExchangeError::current`] — are never protected by a
//! hazard slot. Under the epoch backend the pin covers them; generic code
//! must treat them as compare-only (pointer equality, CAS operands) and
//! re-`load` before dereferencing.

use crate::guard::Guard;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A memory-reclamation scheme, selectable per structure via a type
/// parameter (`SyncDualQueue<T, R>`); defaults to [`Epoch`] everywhere.
///
/// Implementations are zero-sized markers; all state lives in per-thread
/// records and process-wide registries owned by the backend.
pub trait Reclaimer: Sized + Send + Sync + 'static {
    /// The critical-section witness handed out by [`Reclaimer::pin`].
    type Guard: Shield;

    /// Short lowercase backend name (`"epoch"`, `"hazard"`) — used as the
    /// series label in `BENCH_reclaim.json`.
    const NAME: &'static str;

    /// Enters a critical section: loads made through the returned guard
    /// stay valid until the guard drops.
    fn pin() -> Self::Guard;

    /// Returns a no-op guard that performs no protection and runs retired
    /// closures immediately.
    ///
    /// # Safety
    ///
    /// Callable only with exclusive access to every structure touched
    /// through it (`Drop`, `&mut self`, single-threaded construction).
    unsafe fn unprotected() -> Self::Guard;

    /// Retired-but-not-yet-reclaimed closures currently outstanding across
    /// the process for this backend (the live garbage population).
    fn pending() -> usize;

    /// High-water mark of [`Reclaimer::pending`] since process start or the
    /// last [`Reclaimer::reset_peak`].
    fn peak_pending() -> usize;

    /// Resets the [`Reclaimer::peak_pending`] high-water mark to the
    /// current pending count (benchmark bookkeeping).
    fn reset_peak();

    /// Best-effort reclamation pass on the calling thread (seal + collect
    /// for epoch, a registry scan for hazard). Never blocks.
    fn collect();
}

/// A critical-section witness: the trait face of a backend's guard.
///
/// See the module docs for the `protect` validation contract that generic
/// structure code must uphold.
pub trait Shield {
    /// Loads the pointer word in `src` such that the allocation behind its
    /// untagged address cannot be reclaimed while this shield lives (or,
    /// for bounded-slot backends, until the protection is recycled —
    /// see [`SLOT_WINDOW`]).
    ///
    /// `T` only supplies the alignment used to strip tag bits before the
    /// address is published to a hazard slot.
    fn protect<T>(&self, src: &AtomicUsize, ord: Ordering) -> usize;

    /// Defers `f` until no thread can hold a protected reference to the
    /// allocation at `addr` (untagged). Epoch ignores `addr` (the grace
    /// period covers everything); hazard keys its scan on it.
    ///
    /// # Safety
    ///
    /// As for [`Guard::defer_unchecked`]: `f` must be safe to run on any
    /// thread at any later time, and `addr` must be the untagged address of
    /// the unlinked allocation `f` reclaims (it must not be retired twice).
    /// On an unprotected shield `f` runs immediately.
    unsafe fn defer_retire<F: FnOnce()>(&self, addr: usize, f: F);

    /// Hurries reclamation along (seal the bag / scan the registry).
    /// No-op on an unprotected shield.
    fn flush(&self);
}

/// The number of *subsequent* `protect` calls on the same thread for which
/// a previously protected pointer is guaranteed to stay protected under
/// bounded-slot backends (hazard). The epoch backend protects for the whole
/// guard lifetime regardless.
///
/// Structure loops re-load every pointer they touch on each iteration, so
/// their live window is 4–5 protections; this bound leaves headroom.
pub const SLOT_WINDOW: usize = 15;

// ------------------------------------------------------- garbage ledger --

/// One backend's process-wide retired/reclaimed ledger. `pending` is exact
/// (every retire increments, every executed closure decrements); `peak` is
/// a CAS-maintained high-water mark.
pub(crate) struct GarbageLedger {
    pending: AtomicUsize,
    peak: AtomicUsize,
}

impl GarbageLedger {
    pub(crate) const fn new() -> Self {
        GarbageLedger {
            pending: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Records one retirement and pushes the peak if needed.
    pub(crate) fn retire(&self) {
        synq_obs::probe!(ReclaimRetired);
        let now = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self
                .peak
                .compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => peak = actual,
            }
        }
    }

    /// Records one executed retire closure.
    pub(crate) fn reclaimed(&self) {
        synq_obs::probe!(ReclaimFreed);
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    pub(crate) fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    pub(crate) fn reset_peak(&self) {
        self.peak
            .store(self.pending.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

pub(crate) static EPOCH_LEDGER: GarbageLedger = GarbageLedger::new();

// ------------------------------------------------------- epoch backend --

/// The epoch-based backend (this crate's original scheme): fastest loads
/// (`protect` is a plain atomic load), but a single stalled pinned thread
/// stops every epoch advance and lets garbage grow without bound.
pub struct Epoch;

impl Reclaimer for Epoch {
    type Guard = Guard;
    const NAME: &'static str = "epoch";

    #[inline]
    fn pin() -> Guard {
        crate::default::pin()
    }

    #[inline]
    unsafe fn unprotected() -> Guard {
        // SAFETY: forwarded caller contract.
        unsafe { crate::guard::unprotected() }
    }

    fn pending() -> usize {
        EPOCH_LEDGER.pending()
    }

    fn peak_pending() -> usize {
        EPOCH_LEDGER.peak()
    }

    fn reset_peak() {
        EPOCH_LEDGER.reset_peak()
    }

    fn collect() {
        crate::default::pin().flush();
    }
}

impl Shield for Guard {
    #[inline]
    fn protect<T>(&self, src: &AtomicUsize, ord: Ordering) -> usize {
        // The pin already protects every reachable node; no per-pointer
        // publication is needed.
        src.load(ord)
    }

    #[inline]
    unsafe fn defer_retire<F: FnOnce()>(&self, _addr: usize, f: F) {
        EPOCH_LEDGER.retire();
        let f = move || {
            EPOCH_LEDGER.reclaimed();
            f();
        };
        // SAFETY: forwarded caller contract.
        unsafe { self.defer_unchecked(f) }
    }

    #[inline]
    fn flush(&self) {
        Guard::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_pending_and_peak() {
        let ledger = GarbageLedger::new();
        assert_eq!(ledger.pending(), 0);
        ledger.retire();
        ledger.retire();
        ledger.retire();
        assert_eq!(ledger.pending(), 3);
        assert_eq!(ledger.peak(), 3);
        ledger.reclaimed();
        ledger.reclaimed();
        assert_eq!(ledger.pending(), 1);
        assert_eq!(ledger.peak(), 3, "peak survives reclamation");
        ledger.reset_peak();
        assert_eq!(ledger.peak(), 1, "reset snaps peak to current pending");
    }

    #[test]
    fn epoch_defer_retire_flows_through_ledger() {
        let before = Epoch::pending();
        {
            let g = Epoch::pin();
            // SAFETY: the closure owns nothing and can run any time.
            unsafe { g.defer_retire(0x1000, || {}) };
            assert!(Epoch::pending() > before, "retire counted while pending");
            g.flush();
        }
        for _ in 0..64 {
            Epoch::collect();
            if Epoch::pending() <= before {
                break;
            }
        }
        assert!(
            Epoch::pending() <= before,
            "closure ran and was decremented"
        );
        assert!(Epoch::peak_pending() > before);
    }

    #[test]
    fn epoch_protect_matches_plain_load() {
        let word = AtomicUsize::new(0xbeef0);
        let g = Epoch::pin();
        assert_eq!(g.protect::<u64>(&word, Ordering::Acquire), 0xbeef0);
    }

    #[test]
    fn unprotected_shield_runs_retire_immediately() {
        use std::sync::atomic::AtomicBool;
        let ran = AtomicBool::new(false);
        // SAFETY: nothing shared is touched.
        let g = unsafe { Epoch::unprotected() };
        unsafe { g.defer_retire(0, || ran.store(true, Ordering::SeqCst)) };
        assert!(ran.load(Ordering::SeqCst));
    }
}
