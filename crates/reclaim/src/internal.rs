//! The collector's internals: global epoch, participant registry, garbage
//! stack, and per-thread participant records.
//!
//! # Design
//!
//! * **Global epoch** — a monotonically increasing (wrapping) counter.
//! * **Registry** — a push-only lock-free singly linked list of [`Local`]
//!   records. Records are never physically unlinked; a record whose thread
//!   has exited is marked `FREE` and recycled by the next thread that
//!   registers, so the registry's length is bounded by the maximum number of
//!   *concurrent* participants ever observed (documented trade-off vs.
//!   crossbeam's deferred unlinking — it avoids the bootstrapping problem of
//!   reclaiming the reclaimer's own nodes).
//! * **Garbage stack** — a Treiber-style stack of [`SealedBag`]s. Collection
//!   detaches the whole stack with one `swap`, frees expired bags, and
//!   pushes the rest back; concurrent collectors therefore operate on
//!   disjoint chains and never contend beyond the two CAS words. The stack's
//!   node skeletons are pooled ([`NODE_POOL_CAP`]) so a steady defer/collect
//!   load does not allocate.
//! * **Pinning** — the outermost pin publishes `(global << 2) | PINNED` in
//!   the thread's epoch slot, with a `SeqCst` fence that globally orders the
//!   publication against `try_advance`'s scan (that ordering is what makes
//!   the two-advance grace period sound). Unpinning is *lazy*: the slot
//!   keeps the epoch with a [`LAZY`] bit ORed in, so a re-pin that finds the
//!   global epoch unchanged can clear the bit with one relaxed CAS and skip
//!   the fence — the word was continuously published since the last fenced
//!   pin, so every scan in between already treated the thread as pinned.
//!   `try_advance` neutralizes stale lazy slots (CAS to 0); the CAS
//!   arbitrates against a concurrent fast-path re-pin, and whichever side
//!   loses falls back to its slow path.

use crate::bag::{Bag, SealedBag};
use crate::deferred::Deferred;
use crate::guard::Guard;
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use synq_primitives::CachePadded;

/// `Local::state` values.
const FREE: usize = 0;
const IN_USE: usize = 1;

/// Collect every `PINS_BETWEEN_COLLECT` pins.
const PINS_BETWEEN_COLLECT: usize = 128;

/// `Local::epoch` is `(global_epoch << EPOCH_SHIFT) | flags`, or `0` when
/// nothing is published.
const PINNED: usize = 1;
/// Set by `unpin`: the epoch is still published but no guard holds it.
const LAZY: usize = 2;
const EPOCH_SHIFT: u32 = 2;

/// Maximum number of dead [`GarbageNode`] skeletons kept for reuse.
const NODE_POOL_CAP: usize = 32;

struct GarbageNode {
    sealed: SealedBag,
    next: *mut GarbageNode,
}

/// Shared collector state. One per [`crate::Collector`].
pub(crate) struct Global {
    /// The global epoch (raw counter; wraps). Padded: read on every pin and
    /// written by `try_advance` — it must not share a line with the
    /// registry or garbage heads below.
    epoch: CachePadded<AtomicUsize>,
    /// Head of the participant registry (push-only list of `Local`s).
    registry: CachePadded<AtomicPtr<Local>>,
    /// Head of the garbage stack.
    garbage: CachePadded<AtomicPtr<GarbageNode>>,
    /// Dead `GarbageNode` skeletons (sealed bag moved out) awaiting reuse
    /// by `push_sealed`. A `Mutex` rather than a Treiber stack because
    /// `push_sealed` may run unpinned, where a lock-free pop would be
    /// ABA-unsafe.
    node_pool: CachePadded<Mutex<Vec<*mut GarbageNode>>>,
}

// Layout: each of the four hot words above owns its cache line(s).
const _: () = assert!(std::mem::align_of::<Global>() >= 128);
const _: () = assert!(std::mem::size_of::<Global>() >= 4 * 128);

// SAFETY: all shared state is atomics (or mutex-guarded); `Local` cells are
// only touched by their owning thread while IN_USE. The pooled raw pointers
// are plain uninitialized allocations owned by the pool.
unsafe impl Send for Global {}
unsafe impl Sync for Global {}

impl Global {
    pub(crate) fn new() -> Self {
        Global {
            epoch: CachePadded::new(AtomicUsize::new(0)),
            registry: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            garbage: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            node_pool: CachePadded::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers the calling thread, recycling a FREE record if available.
    pub(crate) fn register(self: &Arc<Global>) -> *const Local {
        // Try to recycle a retired record first.
        let mut p = self.registry.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: registry nodes are never freed while the Global lives.
            let local = unsafe { &*p };
            if local.state.load(Ordering::Relaxed) == FREE
                && local
                    .state
                    .compare_exchange(FREE, IN_USE, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // SAFETY: the CAS gave us exclusive ownership of the cells.
                unsafe {
                    debug_assert!((*local.bag.get()).is_empty());
                    *local.global.get() = Some(Arc::clone(self));
                }
                debug_assert_eq!(local.epoch.load(Ordering::Relaxed), 0);
                local.guard_count.set(0);
                local.handle_count.set(1);
                local.pin_count.set(0);
                return p;
            }
            p = local.next.load(Ordering::Acquire);
        }

        // No free record: allocate and push a new one.
        let local = Box::into_raw(Box::new(Local {
            epoch: AtomicUsize::new(0),
            state: AtomicUsize::new(IN_USE),
            next: AtomicPtr::new(ptr::null_mut()),
            bag: UnsafeCell::new(Bag::new()),
            guard_count: Cell::new(0),
            handle_count: Cell::new(1),
            pin_count: Cell::new(0),
            global: UnsafeCell::new(Some(Arc::clone(self))),
        }));
        let mut head = self.registry.load(Ordering::Relaxed);
        loop {
            // SAFETY: `local` is ours until the push succeeds.
            unsafe { (*local).next.store(head, Ordering::Relaxed) };
            match self
                .registry
                .compare_exchange(head, local, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return local,
                Err(h) => head = h,
            }
        }
    }

    /// Current raw global epoch.
    pub(crate) fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Attempts to advance the global epoch; returns the (possibly new)
    /// epoch. Fails harmlessly if some participant is pinned at an older
    /// epoch.
    pub(crate) fn try_advance(&self) -> usize {
        let global_epoch = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);

        let current = (global_epoch << EPOCH_SHIFT) | PINNED;
        let mut p = self.registry.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: registry nodes live as long as the Global.
            let local = unsafe { &*p };
            if local.state.load(Ordering::Acquire) == IN_USE {
                let le = local.epoch.load(Ordering::Relaxed);
                // A slot published at the current epoch never blocks us,
                // lazy or not.
                if le & PINNED != 0 && le | LAZY != current | LAZY {
                    if le & LAZY == 0 {
                        // Genuinely pinned at a different epoch.
                        return global_epoch;
                    }
                    // Published but not held (lazy unpin at a stale epoch):
                    // neutralize the slot so it cannot block the advance.
                    // If the owner's fast-path re-pin races us, exactly one
                    // of the two CASes on the word succeeds.
                    if local
                        .epoch
                        .compare_exchange(le, 0, Ordering::AcqRel, Ordering::Relaxed)
                        .is_err()
                    {
                        // The owner won and is pinned at the stale epoch.
                        return global_epoch;
                    }
                }
            }
            p = local.next.load(Ordering::Acquire);
        }
        fence(Ordering::Acquire);

        if self
            .epoch
            .compare_exchange(
                global_epoch,
                global_epoch.wrapping_add(1),
                Ordering::Release,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            synq_obs::probe!(EpochAdvances);
        }
        self.epoch.load(Ordering::Relaxed)
    }

    /// Pushes a sealed bag onto the garbage stack, reusing a pooled node
    /// skeleton when one is available.
    pub(crate) fn push_sealed(&self, sealed: SealedBag) {
        let pooled = self.node_pool.lock().unwrap().pop();
        let node = match pooled {
            Some(p) => {
                // SAFETY: pooled skeletons are logically uninitialized
                // allocations we own exclusively.
                unsafe {
                    ptr::write(
                        p,
                        GarbageNode {
                            sealed,
                            next: ptr::null_mut(),
                        },
                    )
                };
                p
            }
            None => Box::into_raw(Box::new(GarbageNode {
                sealed,
                next: ptr::null_mut(),
            })),
        };
        self.push_node(node);
    }

    /// Treiber-push of an initialized node onto the garbage stack.
    fn push_node(&self, node: *mut GarbageNode) {
        let mut head = self.garbage.load(Ordering::Relaxed);
        loop {
            // SAFETY: node is ours until the push succeeds.
            unsafe { (*node).next = head };
            match self
                .garbage
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Returns a dead node skeleton to the pool, or frees it if full.
    ///
    /// # Safety
    ///
    /// `node.sealed` must already have been moved out and `node` must be
    /// exclusively owned.
    unsafe fn retire_node_skeleton(&self, node: *mut GarbageNode) {
        let mut pool = self.node_pool.lock().unwrap();
        if pool.len() < NODE_POOL_CAP {
            pool.push(node);
        } else {
            drop(pool);
            // The SealedBag was moved out; free the raw allocation without
            // dropping the logically-uninitialized contents.
            drop(unsafe { Box::from_raw(node as *mut MaybeUninit<GarbageNode>) });
        }
    }

    /// Tries to advance the epoch, then frees every expired bag.
    pub(crate) fn collect(&self) {
        synq_obs::probe!(EpochCollects);
        let global_epoch = self.try_advance();

        // Detach the whole garbage stack; we now own the chain.
        let mut p = self.garbage.swap(ptr::null_mut(), Ordering::AcqRel);
        while !p.is_null() {
            // SAFETY: detached chain is exclusively ours.
            let next = unsafe { (*p).next };
            if unsafe { (*p).sealed.is_expired(global_epoch) } {
                // Move the bag out and recycle the skeleton *before*
                // running the deferreds: they may re-enter `push_sealed`,
                // and we must not hold the pool lock while they run.
                let sealed = unsafe { ptr::read(&(*p).sealed) };
                unsafe { self.retire_node_skeleton(p) };
                drop(sealed); // runs the bag's deferreds
            } else {
                // Unexpired: re-push the node as-is, no realloc.
                self.push_node(p);
            }
            p = next;
        }
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No participant holds an Arc<Global> anymore, so every Local is
        // FREE and no thread can be pinned: run all remaining garbage and
        // free the registry.
        let mut g = *self.garbage.get_mut();
        while !g.is_null() {
            // SAFETY: exclusive access in Drop.
            let node = unsafe { Box::from_raw(g) };
            g = node.next;
            drop(node);
        }
        for p in self.node_pool.get_mut().unwrap().drain(..) {
            // SAFETY: pooled skeletons are logically uninitialized.
            drop(unsafe { Box::from_raw(p as *mut MaybeUninit<GarbageNode>) });
        }
        let mut p = *self.registry.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access in Drop; Locals hold no Arc (FREE).
            let local = unsafe { Box::from_raw(p) };
            debug_assert_eq!(local.state.load(Ordering::Relaxed), FREE);
            p = local.next.load(Ordering::Relaxed);
            drop(local);
        }
    }
}

/// Per-thread participant record. Cells are owner-thread-only while IN_USE.
///
/// Line-aligned so records of different threads never share a cache line:
/// `epoch` is scanned by every `try_advance` while the owning thread hammers
/// `guard_count`/`pin_count` on each pin.
#[repr(align(128))]
pub(crate) struct Local {
    /// `(global_epoch << 2) | PINNED [| LAZY]` while published; `0` when
    /// not. See the module docs for the lazy-unpin protocol.
    epoch: AtomicUsize,
    /// FREE / IN_USE.
    state: AtomicUsize,
    /// Registry link.
    next: AtomicPtr<Local>,
    /// This thread's open bag of deferred closures.
    bag: UnsafeCell<Bag>,
    /// Number of live `Guard`s (re-entrant pinning).
    guard_count: Cell<usize>,
    /// Number of live `LocalHandle`s for this record.
    handle_count: Cell<usize>,
    /// Pins since registration; drives periodic collection.
    pin_count: Cell<usize>,
    /// Keeps the collector alive while registered.
    global: UnsafeCell<Option<Arc<Global>>>,
}

const _: () = assert!(std::mem::align_of::<Local>() >= 128);

impl Local {
    fn global(&self) -> &Arc<Global> {
        // SAFETY: `global` is Some for the whole IN_USE lifetime and only
        // the owner thread (us) takes it in `finalize`.
        unsafe { (*self.global.get()).as_ref().expect("local not registered") }
    }

    /// Pins the thread; returns a guard that unpins on drop.
    pub(crate) fn pin(&self) -> Guard {
        let guard = Guard {
            local: self as *const Local,
        };
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            self.publish();
        }
        guard
    }

    /// Publishes the epoch for an outermost guard.
    fn publish(&self) {
        let global = self.global();
        let ge = global.epoch.load(Ordering::Relaxed);
        let pinned = (ge << EPOCH_SHIFT) | PINNED;
        // Fast path: our slot is still published at the current global
        // epoch from a lazily-unpinned previous guard. Clearing the LAZY
        // bit with a relaxed CAS suffices: the word has been continuously
        // published since our last *fenced* publish, so every
        // `try_advance` scan since then already saw us pinned at `ge`, and
        // the CAS arbitrates the race with a concurrent neutralization
        // (exactly one of the two CASes on this word succeeds).
        let lazy = pinned | LAZY;
        let fast = self.epoch.load(Ordering::Relaxed) == lazy
            && self
                .epoch
                .compare_exchange(lazy, pinned, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok();
        synq_obs::probe!(EpochPins);
        if fast {
            synq_obs::probe!(EpochFastRepins);
        } else {
            Self::publish_slow(&self.epoch, pinned);
        }

        let pins = self.pin_count.get().wrapping_add(1);
        self.pin_count.set(pins);
        if pins.is_multiple_of(PINS_BETWEEN_COLLECT) {
            global.collect();
        }
    }

    /// Full fenced publication, globally ordered against `try_advance`.
    #[cold]
    fn publish_slow(epoch: &AtomicUsize, pinned: usize) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            // A SeqCst swap compiles to a single `xchg`, which is both the
            // store and the full barrier — one locked instruction instead
            // of a store followed by `mfence`.
            epoch.swap(pinned, Ordering::SeqCst);
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        {
            epoch.store(pinned, Ordering::Relaxed);
            fence(Ordering::SeqCst);
        }
    }

    /// True if a guard is currently alive on this thread.
    pub(crate) fn is_pinned(&self) -> bool {
        self.guard_count.get() > 0
    }

    /// Called by `Guard::drop`.
    pub(crate) fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            // Lazy unpin: keep the epoch published with the LAZY bit so an
            // immediate re-pin at the same global epoch can skip the full
            // fence. While genuinely pinned only we write this word, so
            // the plain read-modify-write below cannot race.
            let e = self.epoch.load(Ordering::Relaxed);
            self.epoch.store(e | LAZY, Ordering::Release);
            if self.handle_count.get() == 0 {
                self.finalize();
            }
        }
    }

    /// Adds a deferred closure to this thread's bag, sealing if full.
    pub(crate) fn defer(&self, mut deferred: Deferred) {
        synq_obs::probe!(EpochDefers);
        // SAFETY: bag is owner-thread-only.
        let bag = unsafe { &mut *self.bag.get() };
        while let Err(d) = bag.try_push(deferred) {
            self.seal_bag();
            deferred = d;
        }
    }

    /// Seals the current bag into the global garbage stack.
    fn seal_bag(&self) {
        // SAFETY: bag is owner-thread-only.
        let bag = unsafe { &mut *self.bag.get() };
        if bag.is_empty() {
            return;
        }
        let global = self.global();
        // Globally order the seal-epoch read after every prior access to
        // the retired objects (crossbeam's `push_bag` carries the same
        // fence). Without it the read could return a stale, older epoch
        // and the bag would expire one grace period early.
        fence(Ordering::SeqCst);
        let epoch = global.epoch();
        global.push_sealed(SealedBag {
            epoch,
            bag: std::mem::take(bag),
        });
    }

    /// Seals the bag and runs a collection cycle.
    pub(crate) fn flush(&self) {
        self.seal_bag();
        self.global().collect();
    }

    /// Called by `LocalHandle::drop`.
    pub(crate) fn release_handle(&self) {
        let count = self.handle_count.get();
        debug_assert!(count > 0);
        self.handle_count.set(count - 1);
        if count == 1 && self.guard_count.get() == 0 {
            self.finalize();
        }
    }

    /// Retires this record: flush remaining garbage, drop the collector
    /// reference, and mark FREE for recycling.
    fn finalize(&self) {
        debug_assert_eq!(self.guard_count.get(), 0);
        debug_assert_eq!(self.handle_count.get(), 0);
        self.seal_bag();
        // Clear any lazily-published epoch: a recycled record must never
        // satisfy a later owner's fence-free fast path on the strength of
        // a publish this thread made.
        self.epoch.store(0, Ordering::Release);
        // SAFETY: owner-thread-only cell; after this we only touch `state`.
        let global = unsafe { (*self.global.get()).take().expect("double finalize") };
        self.state.store(FREE, Ordering::Release);
        // `global` (possibly the last Arc) drops here, after FREE is
        // published, so Global::drop can assume all records are FREE.
        drop(global);
    }
}
