//! The collector's internals: global epoch, participant registry, garbage
//! stack, and per-thread participant records.
//!
//! # Design
//!
//! * **Global epoch** — a monotonically increasing (wrapping) counter.
//! * **Registry** — a push-only lock-free singly linked list of [`Local`]
//!   records. Records are never physically unlinked; a record whose thread
//!   has exited is marked `FREE` and recycled by the next thread that
//!   registers, so the registry's length is bounded by the maximum number of
//!   *concurrent* participants ever observed (documented trade-off vs.
//!   crossbeam's deferred unlinking — it avoids the bootstrapping problem of
//!   reclaiming the reclaimer's own nodes).
//! * **Garbage stack** — a Treiber-style stack of [`SealedBag`]s. Collection
//!   detaches the whole stack with one `swap`, frees expired bags, and
//!   pushes the rest back; concurrent collectors therefore operate on
//!   disjoint chains and never contend beyond the two CAS words.
//! * **Pinning** — `local.epoch = (global << 1) | 1` followed by a `SeqCst`
//!   fence. The fence globally orders the pin against `try_advance`'s scan,
//!   which is what makes the two-advance grace period sound.

use crate::bag::{Bag, SealedBag};
use crate::deferred::Deferred;
use crate::guard::Guard;
use std::cell::{Cell, UnsafeCell};
use std::ptr;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// `Local::state` values.
const FREE: usize = 0;
const IN_USE: usize = 1;

/// Collect every `PINS_BETWEEN_COLLECT` pins.
const PINS_BETWEEN_COLLECT: usize = 128;

struct GarbageNode {
    sealed: SealedBag,
    next: *mut GarbageNode,
}

/// Shared collector state. One per [`crate::Collector`].
pub(crate) struct Global {
    /// The global epoch (raw counter; wraps).
    epoch: AtomicUsize,
    /// Head of the participant registry (push-only list of `Local`s).
    registry: AtomicPtr<Local>,
    /// Head of the garbage stack.
    garbage: AtomicPtr<GarbageNode>,
}

// SAFETY: all shared state is atomics; `Local` cells are only touched by
// their owning thread while IN_USE.
unsafe impl Send for Global {}
unsafe impl Sync for Global {}

impl Global {
    pub(crate) fn new() -> Self {
        Global {
            epoch: AtomicUsize::new(0),
            registry: AtomicPtr::new(ptr::null_mut()),
            garbage: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Registers the calling thread, recycling a FREE record if available.
    pub(crate) fn register(self: &Arc<Global>) -> *const Local {
        // Try to recycle a retired record first.
        let mut p = self.registry.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: registry nodes are never freed while the Global lives.
            let local = unsafe { &*p };
            if local.state.load(Ordering::Relaxed) == FREE
                && local
                    .state
                    .compare_exchange(FREE, IN_USE, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // SAFETY: the CAS gave us exclusive ownership of the cells.
                unsafe {
                    debug_assert!((*local.bag.get()).is_empty());
                    *local.global.get() = Some(Arc::clone(self));
                }
                local.guard_count.set(0);
                local.handle_count.set(1);
                local.pin_count.set(0);
                return p;
            }
            p = local.next.load(Ordering::Acquire);
        }

        // No free record: allocate and push a new one.
        let local = Box::into_raw(Box::new(Local {
            epoch: AtomicUsize::new(0),
            state: AtomicUsize::new(IN_USE),
            next: AtomicPtr::new(ptr::null_mut()),
            bag: UnsafeCell::new(Bag::new()),
            guard_count: Cell::new(0),
            handle_count: Cell::new(1),
            pin_count: Cell::new(0),
            global: UnsafeCell::new(Some(Arc::clone(self))),
        }));
        let mut head = self.registry.load(Ordering::Relaxed);
        loop {
            // SAFETY: `local` is ours until the push succeeds.
            unsafe { (*local).next.store(head, Ordering::Relaxed) };
            match self.registry.compare_exchange(
                head,
                local,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return local,
                Err(h) => head = h,
            }
        }
    }

    /// Current raw global epoch.
    pub(crate) fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Attempts to advance the global epoch; returns the (possibly new)
    /// epoch. Fails harmlessly if some participant is pinned at an older
    /// epoch.
    pub(crate) fn try_advance(&self) -> usize {
        let global_epoch = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);

        let mut p = self.registry.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: registry nodes live as long as the Global.
            let local = unsafe { &*p };
            if local.state.load(Ordering::Acquire) == IN_USE {
                let le = local.epoch.load(Ordering::Relaxed);
                if le & 1 == 1 && le != (global_epoch << 1) | 1 {
                    // Pinned at a different epoch: cannot advance.
                    return global_epoch;
                }
            }
            p = local.next.load(Ordering::Acquire);
        }
        fence(Ordering::Acquire);

        let _ = self.epoch.compare_exchange(
            global_epoch,
            global_epoch.wrapping_add(1),
            Ordering::Release,
            Ordering::Relaxed,
        );
        self.epoch.load(Ordering::Relaxed)
    }

    /// Pushes a sealed bag onto the garbage stack.
    pub(crate) fn push_sealed(&self, sealed: SealedBag) {
        let node = Box::into_raw(Box::new(GarbageNode {
            sealed,
            next: ptr::null_mut(),
        }));
        let mut head = self.garbage.load(Ordering::Relaxed);
        loop {
            // SAFETY: node is ours until the push succeeds.
            unsafe { (*node).next = head };
            match self
                .garbage
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Tries to advance the epoch, then frees every expired bag.
    pub(crate) fn collect(&self) {
        let global_epoch = self.try_advance();

        // Detach the whole garbage stack; we now own the chain.
        let mut p = self.garbage.swap(ptr::null_mut(), Ordering::AcqRel);
        while !p.is_null() {
            // SAFETY: detached chain is exclusively ours.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
            if node.sealed.is_expired(global_epoch) {
                drop(node); // runs the bag's deferreds
            } else {
                self.push_sealed(node.sealed);
            }
        }
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No participant holds an Arc<Global> anymore, so every Local is
        // FREE and no thread can be pinned: run all remaining garbage and
        // free the registry.
        let mut g = *self.garbage.get_mut();
        while !g.is_null() {
            // SAFETY: exclusive access in Drop.
            let node = unsafe { Box::from_raw(g) };
            g = node.next;
            drop(node);
        }
        let mut p = *self.registry.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access in Drop; Locals hold no Arc (FREE).
            let local = unsafe { Box::from_raw(p) };
            debug_assert_eq!(local.state.load(Ordering::Relaxed), FREE);
            p = local.next.load(Ordering::Relaxed);
            drop(local);
        }
    }
}

/// Per-thread participant record. Cells are owner-thread-only while IN_USE.
pub(crate) struct Local {
    /// `(global_epoch << 1) | 1` while pinned; `0` while unpinned.
    epoch: AtomicUsize,
    /// FREE / IN_USE.
    state: AtomicUsize,
    /// Registry link.
    next: AtomicPtr<Local>,
    /// This thread's open bag of deferred closures.
    bag: UnsafeCell<Bag>,
    /// Number of live `Guard`s (re-entrant pinning).
    guard_count: Cell<usize>,
    /// Number of live `LocalHandle`s for this record.
    handle_count: Cell<usize>,
    /// Pins since registration; drives periodic collection.
    pin_count: Cell<usize>,
    /// Keeps the collector alive while registered.
    global: UnsafeCell<Option<Arc<Global>>>,
}

impl Local {
    fn global(&self) -> &Arc<Global> {
        // SAFETY: `global` is Some for the whole IN_USE lifetime and only
        // the owner thread (us) takes it in `finalize`.
        unsafe { (*self.global.get()).as_ref().expect("local not registered") }
    }

    /// Pins the thread; returns a guard that unpins on drop.
    pub(crate) fn pin(&self) -> Guard {
        let guard = Guard {
            local: self as *const Local,
        };
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            let global = self.global();
            let ge = global.epoch.load(Ordering::Relaxed);
            self.epoch.store((ge << 1) | 1, Ordering::Relaxed);
            // Globally order the pin against `try_advance`'s scan. On x86
            // this is the one real cost of pinning (~ one locked insn).
            fence(Ordering::SeqCst);

            let pins = self.pin_count.get().wrapping_add(1);
            self.pin_count.set(pins);
            if pins % PINS_BETWEEN_COLLECT == 0 {
                global.collect();
            }
        }
        guard
    }

    /// True if a guard is currently alive on this thread.
    pub(crate) fn is_pinned(&self) -> bool {
        self.guard_count.get() > 0
    }

    /// Called by `Guard::drop`.
    pub(crate) fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            self.epoch.store(0, Ordering::Release);
            if self.handle_count.get() == 0 {
                self.finalize();
            }
        }
    }

    /// Adds a deferred closure to this thread's bag, sealing if full.
    pub(crate) fn defer(&self, mut deferred: Deferred) {
        // SAFETY: bag is owner-thread-only.
        let bag = unsafe { &mut *self.bag.get() };
        while let Err(d) = bag.try_push(deferred) {
            self.seal_bag();
            deferred = d;
        }
    }

    /// Seals the current bag into the global garbage stack.
    fn seal_bag(&self) {
        // SAFETY: bag is owner-thread-only.
        let bag = unsafe { &mut *self.bag.get() };
        if bag.is_empty() {
            return;
        }
        let global = self.global();
        let epoch = global.epoch();
        global.push_sealed(SealedBag {
            epoch,
            bag: std::mem::take(bag),
        });
    }

    /// Seals the bag and runs a collection cycle.
    pub(crate) fn flush(&self) {
        self.seal_bag();
        self.global().collect();
    }

    /// Called by `LocalHandle::drop`.
    pub(crate) fn release_handle(&self) {
        let count = self.handle_count.get();
        debug_assert!(count > 0);
        self.handle_count.set(count - 1);
        if count == 1 && self.guard_count.get() == 0 {
            self.finalize();
        }
    }

    /// Retires this record: flush remaining garbage, drop the collector
    /// reference, and mark FREE for recycling.
    fn finalize(&self) {
        debug_assert_eq!(self.guard_count.get(), 0);
        debug_assert_eq!(self.handle_count.get(), 0);
        self.seal_bag();
        // SAFETY: owner-thread-only cell; after this we only touch `state`.
        let global = unsafe { (*self.global.get()).take().expect("double finalize") };
        self.state.store(FREE, Ordering::Release);
        // `global` (possibly the last Arc) drops here, after FREE is
        // published, so Global::drop can assume all records are FREE.
        drop(global);
    }
}
