//! The process-wide default collector and thread-local participation.

use crate::collector::{Collector, LocalHandle};
use crate::guard::Guard;
use std::sync::OnceLock;

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(Collector::new)
}

thread_local! {
    static HANDLE: LocalHandle = collector().register();
}

/// Returns the process-wide default collector.
pub fn default_collector() -> &'static Collector {
    collector()
}

/// Pins the current thread against the default collector.
///
/// All `synq` data structures defer reclamation through this collector, so
/// a guard obtained here protects loads from any of them.
#[inline]
pub fn pin() -> Guard {
    with_handle(|h| h.pin())
}

#[inline]
fn with_handle<F, R>(f: F) -> R
where
    F: FnOnce(&LocalHandle) -> R,
{
    let mut f = Some(f);
    match HANDLE.try_with(|h| (f.take().expect("with_handle reentered"))(h)) {
        Ok(r) => r,
        Err(_) => {
            // The thread-local was already destroyed (we are inside another
            // TLS destructor). Fall back to a transient registration; a
            // returned guard keeps the record alive until it drops.
            let handle = collector().register();
            (f.take().expect("closure consumed despite TLS error"))(&handle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn pin_from_many_threads() {
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(thread::spawn(|| {
                for _ in 0..100 {
                    let g = pin();
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn default_collector_is_singleton() {
        assert_eq!(default_collector(), default_collector());
    }

    #[test]
    fn deferred_through_default_pin_runs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let g = pin();
            let c = Arc::clone(&counter);
            unsafe {
                g.defer_unchecked(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            g.flush();
        }
        // Drive epochs forward until the deferral executes.
        for _ in 0..64 {
            let g = pin();
            g.flush();
            drop(g);
            if counter.load(Ordering::SeqCst) == 1 {
                break;
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
