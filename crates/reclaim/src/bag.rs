//! Bags of deferred closures.
//!
//! Retired garbage accumulates in a per-thread [`Bag`] of fixed capacity;
//! when full, the bag is *sealed* with the global epoch at seal time and
//! pushed onto the collector's global garbage stack. A sealed bag may be
//! executed once the global epoch has advanced at least two steps past its
//! seal epoch (three-epoch reclamation): recording the *seal*-time epoch is
//! conservative, since every item in the bag was retired at or before it.

use crate::deferred::Deferred;

/// Maximum number of deferred items in a bag before it must be sealed.
pub(crate) const MAX_OBJECTS: usize = 64;

/// A fixed-capacity container of deferred closures.
#[derive(Debug, Default)]
pub(crate) struct Bag {
    deferreds: Vec<Deferred>,
}

impl Bag {
    pub(crate) fn new() -> Self {
        Bag {
            deferreds: Vec::new(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.deferreds.is_empty()
    }

    /// Attempts to add `deferred`; returns it back if the bag is full.
    pub(crate) fn try_push(&mut self, deferred: Deferred) -> Result<(), Deferred> {
        if self.deferreds.len() < MAX_OBJECTS {
            if self.deferreds.capacity() == 0 {
                self.deferreds.reserve(MAX_OBJECTS);
            }
            self.deferreds.push(deferred);
            Ok(())
        } else {
            Err(deferred)
        }
    }

    /// Runs every deferred closure in the bag, emptying it.
    pub(crate) fn call_all(&mut self) {
        for d in self.deferreds.drain(..) {
            d.call();
        }
    }
}

impl Drop for Bag {
    fn drop(&mut self) {
        self.call_all();
    }
}

/// A bag stamped with the global epoch at which it was sealed.
#[derive(Debug)]
pub(crate) struct SealedBag {
    pub(crate) epoch: usize,
    /// Dropped (running its deferreds) when the bag expires.
    #[allow(dead_code)]
    pub(crate) bag: Bag,
}

impl SealedBag {
    /// True once `global_epoch` is at least two advances past the seal.
    pub(crate) fn is_expired(&self, global_epoch: usize) -> bool {
        global_epoch.wrapping_sub(self.epoch) >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counting_deferred(c: &Arc<AtomicUsize>) -> Deferred {
        let c = Arc::clone(c);
        Deferred::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn push_until_full() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new();
        for _ in 0..MAX_OBJECTS {
            assert!(bag.try_push(counting_deferred(&c)).is_ok());
        }
        let rejected = bag.try_push(counting_deferred(&c));
        assert!(rejected.is_err());
        drop(rejected); // runs the rejected closure
        assert_eq!(c.load(Ordering::SeqCst), 1);
        drop(bag);
        assert_eq!(c.load(Ordering::SeqCst), MAX_OBJECTS + 1);
    }

    #[test]
    fn drop_runs_everything() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new();
        for _ in 0..10 {
            bag.try_push(counting_deferred(&c)).unwrap();
        }
        drop(bag);
        assert_eq!(c.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn expiry_uses_wrapping_distance() {
        let sealed = SealedBag {
            epoch: usize::MAX,
            bag: Bag::new(),
        };
        assert!(!sealed.is_expired(usize::MAX));
        assert!(!sealed.is_expired(0)); // one advance (wrapped)
        assert!(sealed.is_expired(1)); // two advances
    }

    #[test]
    fn empty_flag() {
        let mut bag = Bag::new();
        assert!(bag.is_empty());
        let c = Arc::new(AtomicUsize::new(0));
        bag.try_push(counting_deferred(&c)).unwrap();
        assert!(!bag.is_empty());
        bag.call_all();
        assert!(bag.is_empty());
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }
}
