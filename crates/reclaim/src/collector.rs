//! User-facing collector and per-thread handles.

use crate::guard::Guard;
use crate::internal::{Global, Local};
use std::fmt;
use std::sync::Arc;

/// An epoch-based garbage collector instance.
///
/// Most users share the process-wide default collector through
/// [`crate::pin`]; independent collectors are useful in tests (isolated
/// garbage accounting) and for structures with wildly different retirement
/// rates.
///
/// # Examples
///
/// ```
/// use synq_reclaim::Collector;
///
/// let collector = Collector::new();
/// let handle = collector.register();
/// let guard = handle.pin();
/// drop(guard);
/// ```
pub struct Collector {
    pub(crate) global: Arc<Global>,
}

impl Collector {
    /// Creates a fresh collector with its own epoch and garbage.
    pub fn new() -> Self {
        Collector {
            global: Arc::new(Global::new()),
        }
    }

    /// Registers the current thread, returning its participation handle.
    pub fn register(&self) -> LocalHandle {
        LocalHandle {
            local: self.global.register(),
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Collector {
    fn clone(&self) -> Self {
        Collector {
            global: Arc::clone(&self.global),
        }
    }
}

impl PartialEq for Collector {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.global, &other.global)
    }
}
impl Eq for Collector {}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Collector { .. }")
    }
}

/// A thread's registration with a [`Collector`]. Not `Send`: it belongs to
/// the registering thread.
pub struct LocalHandle {
    pub(crate) local: *const Local,
}

impl LocalHandle {
    /// Pins the thread.
    #[inline]
    pub fn pin(&self) -> Guard {
        // SAFETY: local is valid while the handle (or any of its guards)
        // lives; record recycling only happens after release.
        unsafe { (*self.local).pin() }
    }

    /// True if a guard from this handle is currently alive.
    #[inline]
    pub fn is_pinned(&self) -> bool {
        // SAFETY: as in `pin`.
        unsafe { (*self.local).is_pinned() }
    }

    /// Seals this thread's garbage and runs a collection cycle.
    pub fn flush(&self) {
        // SAFETY: as in `pin`.
        unsafe { (*self.local).flush() }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // SAFETY: balanced with registration.
        unsafe { (*self.local).release_handle() }
    }
}

impl fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("LocalHandle { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;
    use std::thread;

    #[test]
    fn pin_unpin_reentrant() {
        let c = Collector::new();
        let h = c.register();
        assert!(!h.is_pinned());
        let g1 = h.pin();
        assert!(h.is_pinned());
        let g2 = h.pin();
        drop(g1);
        assert!(h.is_pinned());
        drop(g2);
        assert!(!h.is_pinned());
    }

    #[test]
    fn deferred_runs_eventually() {
        let c = Collector::new();
        let h = c.register();
        let counter = StdArc::new(AtomicUsize::new(0));
        {
            let guard = h.pin();
            let cc = StdArc::clone(&counter);
            unsafe {
                guard.defer_unchecked(move || {
                    cc.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Repeated pin/flush cycles must eventually advance two epochs and
        // run the deferral.
        for _ in 0..10 {
            h.flush();
            if counter.load(Ordering::SeqCst) == 1 {
                break;
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_thread_blocks_reclamation() {
        let c = Collector::new();
        let h = c.register();
        let blocker_guard = h.pin();

        let counter = StdArc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let cc = StdArc::clone(&counter);
        thread::spawn(move || {
            let h2 = c2.register();
            let g = h2.pin();
            let cc2 = StdArc::clone(&cc);
            unsafe {
                g.defer_unchecked(move || {
                    cc2.fetch_add(1, Ordering::SeqCst);
                });
            }
            drop(g);
            // Aggressively try to reclaim; the pinned blocker must prevent
            // two epoch advances.
            for _ in 0..20 {
                h2.flush();
            }
        })
        .join()
        .unwrap();

        assert_eq!(
            counter.load(Ordering::SeqCst),
            0,
            "garbage freed while a thread that could hold references was pinned"
        );
        drop(blocker_guard);
        for _ in 0..10 {
            h.flush();
            if counter.load(Ordering::SeqCst) == 1 {
                break;
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn collector_drop_runs_leftover_garbage() {
        let counter = StdArc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            let h = c.register();
            let guard = h.pin();
            for _ in 0..10 {
                let cc = StdArc::clone(&counter);
                unsafe {
                    guard.defer_unchecked(move || {
                        cc.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }
            drop(guard);
            drop(h);
            // c dropped here — the last reference to the Global.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn participant_record_recycled_across_threads() {
        let c = Collector::new();
        // Register/unregister from many short-lived threads; the registry
        // must recycle records rather than growing without bound. We can't
        // observe the registry length directly, so this is a smoke test for
        // the FREE/IN_USE lifecycle (would deadlock or crash on bugs).
        for _ in 0..64 {
            let c2 = c.clone();
            thread::spawn(move || {
                let h = c2.register();
                let g = h.pin();
                drop(g);
            })
            .join()
            .unwrap();
        }
    }

    #[test]
    fn handle_dropped_while_guard_alive() {
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        drop(h); // must not finalize yet: the guard is still alive
        drop(g); // finalize happens here
        let h2 = c.register();
        let _g2 = h2.pin();
    }

    #[test]
    fn collectors_compare_by_identity() {
        let a = Collector::new();
        let b = Collector::new();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
