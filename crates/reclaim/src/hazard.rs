//! Hazard-pointer reclamation backend (Michael, *Hazard Pointers: Safe
//! Memory Reclamation for Lock-Free Objects*, 2004).
//!
//! Where the epoch scheme protects *everything a pinned thread might
//! reach*, hazard pointers protect *exactly the addresses a thread has
//! published in its slots*. The trade flips both ways:
//!
//! * every [`Shield::protect`] pays a slot publication (a `SeqCst`
//!   store-and-fence) plus a validation re-read, so loads are slower than
//!   the epoch backend's plain `load`;
//! * a stalled thread can pin at most [`SLOTS_PER_RECORD`] allocations
//!   forever, so the process-wide unreclaimed garbage stays **bounded** no
//!   matter how long a reader sleeps mid-critical-section — the property
//!   the epoch scheme fundamentally lacks and the stalled-thread bench
//!   (`BENCH_reclaim.json`) measures.
//!
//! # Structure
//!
//! * A process-wide, push-only registry of [`HazardRecord`]s, one per
//!   participating thread, each holding [`SLOTS_PER_RECORD`] hazard slots.
//!   Records of exited threads are marked free and recycled (same design as
//!   the epoch registry — never physically unlinked, so the registry never
//!   needs to reclaim itself).
//! * A per-thread retire list of `(address, closure)` pairs. When it
//!   reaches [`SCAN_THRESHOLD`] entries the thread **scans**: snapshot
//!   every slot in the registry, then run each retired closure whose
//!   address no slot holds. Survivors stay on the list.
//! * Threads that exit with a non-empty list push it onto a global orphan
//!   list; the next scan by any thread adopts it.
//!
//! Slots are a per-thread ring: each `protect` takes the next slot, so a
//! protection is retracted after [`crate::SLOT_WINDOW`] subsequent
//! `protect` calls (or when the outermost guard drops, whichever is
//! sooner). See the [`crate::reclaimer`] module docs for the validation
//! contract callers must uphold on top of this.

use crate::deferred::Deferred;
use crate::reclaimer::{GarbageLedger, Reclaimer, Shield, SLOT_WINDOW};
use std::cell::{Cell, RefCell};
use std::mem;
use std::ptr;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Hazard slots per participating thread. One more than the public
/// [`SLOT_WINDOW`] guarantee: the (N+1)-th `protect` recycles the oldest.
pub const SLOTS_PER_RECORD: usize = SLOT_WINDOW + 1;

/// Retire-list length that triggers a scan. Per-thread garbage is bounded
/// by `SCAN_THRESHOLD + total hazard slots` between scans.
pub const SCAN_THRESHOLD: usize = 64;

/// `HazardRecord::state` values (mirrors the epoch registry).
const FREE: usize = 0;
const IN_USE: usize = 1;

pub(crate) static HAZARD_LEDGER: GarbageLedger = GarbageLedger::new();

/// One thread's slots in the global registry. Cache-line aligned so a
/// thread's slot publications do not false-share with its neighbours'.
#[repr(align(128))]
struct HazardRecord {
    slots: [AtomicUsize; SLOTS_PER_RECORD],
    /// `FREE` / `IN_USE` — recycled, never unlinked.
    state: AtomicUsize,
    next: AtomicPtr<HazardRecord>,
}

impl HazardRecord {
    fn new() -> Self {
        HazardRecord {
            slots: std::array::from_fn(|_| AtomicUsize::new(0)),
            state: AtomicUsize::new(IN_USE),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// Registry head. Records are heap-allocated once and reachable forever.
static REGISTRY: AtomicPtr<HazardRecord> = AtomicPtr::new(ptr::null_mut());

/// Retire lists abandoned by exited threads, adopted by the next scan.
static ORPHANS: Mutex<Vec<Retired>> = Mutex::new(Vec::new());

struct Retired {
    /// Untagged allocation address — the scan key.
    addr: usize,
    deferred: Deferred,
}

/// Claims a free record from the registry or pushes a new one.
fn register() -> *const HazardRecord {
    let mut rec = REGISTRY.load(Ordering::Acquire);
    while let Some(r) = unsafe { rec.as_ref() } {
        if r.state.load(Ordering::Relaxed) == FREE
            && r.state
                .compare_exchange(FREE, IN_USE, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return r;
        }
        rec = r.next.load(Ordering::Acquire);
    }
    let rec = Box::into_raw(Box::new(HazardRecord::new()));
    let mut head = REGISTRY.load(Ordering::Relaxed);
    loop {
        // SAFETY: `rec` is ours until the CAS publishes it.
        unsafe { (*rec).next.store(head, Ordering::Relaxed) };
        match REGISTRY.compare_exchange_weak(head, rec, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => return rec,
            Err(h) => head = h,
        }
    }
}

/// Publishes `addr` in `slot` with the store globally ordered before any
/// subsequent load (the protect-side half of the Dekker handshake with the
/// scan's leading `SeqCst` fence). Same idiom as the epoch collector's
/// `publish_slow`: on x86 the `xchg` is itself a full barrier.
#[inline]
fn publish(slot: &AtomicUsize, addr: usize) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        slot.swap(addr, Ordering::SeqCst);
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        slot.store(addr, Ordering::Relaxed);
        fence(Ordering::SeqCst);
    }
}

/// Per-thread participant state (slot cursor + retire list).
struct HazardLocal {
    record: *const HazardRecord,
    /// Nested-guard depth; slots are retracted when it returns to zero.
    guard_count: Cell<usize>,
    /// Next slot index in the per-thread ring.
    cursor: Cell<usize>,
    /// Re-entrancy latch: a retire closure may itself retire.
    scanning: Cell<bool>,
    retired: RefCell<Vec<Retired>>,
}

impl HazardLocal {
    fn new() -> Self {
        HazardLocal {
            record: register(),
            guard_count: Cell::new(0),
            cursor: Cell::new(0),
            scanning: Cell::new(false),
            retired: RefCell::new(Vec::new()),
        }
    }

    fn record(&self) -> &HazardRecord {
        // SAFETY: registry records are never freed.
        unsafe { &*self.record }
    }

    /// Takes the next slot in the ring.
    fn next_slot(&self) -> &AtomicUsize {
        let i = self.cursor.get();
        self.cursor.set((i + 1) % SLOTS_PER_RECORD);
        &self.record().slots[i]
    }

    fn retire(&self, entry: Retired) {
        HAZARD_LEDGER.retire();
        let len = {
            let mut retired = self.retired.borrow_mut();
            retired.push(entry);
            retired.len()
        };
        if len >= SCAN_THRESHOLD {
            self.scan();
        }
    }

    /// Snapshot every hazard slot; run retired closures nobody protects.
    fn scan(&self) {
        if self.scanning.get() {
            return; // re-entered from a retire closure
        }
        self.scanning.set(true);
        synq_obs::probe!(ReclaimHazardScans);
        let mut batch = self.retired.take();
        if let Ok(mut orphans) = ORPHANS.try_lock() {
            batch.append(&mut orphans);
        }
        if batch.is_empty() {
            self.scanning.set(false);
            return;
        }
        // Orders every earlier slot publication before our slot reads: a
        // protect whose publish was not yet visible here will, by the same
        // fence pair, observe the unlink that preceded this scan's retire
        // and re-validate (see the reclaimer module docs).
        fence(Ordering::SeqCst);
        let mut hazards: Vec<usize> = Vec::with_capacity(2 * SLOTS_PER_RECORD);
        let mut rec = REGISTRY.load(Ordering::Acquire);
        while let Some(r) = unsafe { rec.as_ref() } {
            // Slots of free records are zeroed before release, so reading
            // them unconditionally is merely conservative.
            for slot in &r.slots {
                let v = slot.load(Ordering::Acquire);
                if v != 0 {
                    hazards.push(v);
                }
            }
            rec = r.next.load(Ordering::Acquire);
        }
        hazards.sort_unstable();
        let before = batch.len();
        let mut kept = Vec::new();
        for r in batch {
            if hazards.binary_search(&r.addr).is_ok() {
                synq_obs::probe!(ReclaimHazardHeld);
                kept.push(r);
            } else {
                // May re-enter `retire` (drop chains); the latch above
                // keeps that from recursing into another scan.
                r.deferred.call();
            }
        }
        if kept.len() == before {
            synq_obs::probe!(ReclaimStalls);
        }
        self.retired.borrow_mut().extend(kept);
        self.scanning.set(false);
    }
}

impl Drop for HazardLocal {
    fn drop(&mut self) {
        let rec = self.record();
        for slot in &rec.slots {
            slot.store(0, Ordering::Release);
        }
        // One last scan with our own protections retracted; whatever other
        // threads still protect is orphaned for them to adopt.
        self.scanning.set(false);
        self.scan();
        let rest = self.retired.take();
        if !rest.is_empty() {
            ORPHANS
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend(rest);
        }
        rec.state.store(FREE, Ordering::Release);
    }
}

thread_local! {
    static LOCAL: HazardLocal = HazardLocal::new();
}

/// The hazard-pointer backend marker. See the module docs.
pub struct Hazard;

/// Witness of hazard-pointer participation; see [`Hazard`] and the
/// [`crate::Shield`] contract.
pub struct HazardGuard {
    /// Null for unprotected guards.
    local: *const HazardLocal,
    /// Transient registration used when the thread-local is gone (TLS
    /// teardown); dropped — and scanned — with the guard.
    _own: Option<Box<HazardLocal>>,
}

impl HazardGuard {
    #[inline]
    fn local(&self) -> Option<&HazardLocal> {
        // SAFETY: non-null `local` points either at the live thread-local
        // or into `_own`, both of which outlive the guard.
        unsafe { self.local.as_ref() }
    }
}

impl Reclaimer for Hazard {
    type Guard = HazardGuard;
    const NAME: &'static str = "hazard";

    fn pin() -> HazardGuard {
        match LOCAL.try_with(|l| {
            l.guard_count.set(l.guard_count.get() + 1);
            l as *const HazardLocal
        }) {
            Ok(local) => HazardGuard { local, _own: None },
            Err(_) => {
                // TLS destructor context: transient registration.
                let own = Box::new(HazardLocal::new());
                own.guard_count.set(1);
                let local = &*own as *const HazardLocal;
                HazardGuard {
                    local,
                    _own: Some(own),
                }
            }
        }
    }

    unsafe fn unprotected() -> HazardGuard {
        HazardGuard {
            local: ptr::null(),
            _own: None,
        }
    }

    fn pending() -> usize {
        HAZARD_LEDGER.pending()
    }

    fn peak_pending() -> usize {
        HAZARD_LEDGER.peak()
    }

    fn reset_peak() {
        HAZARD_LEDGER.reset_peak()
    }

    fn collect() {
        let _ = LOCAL.try_with(|l| l.scan());
    }
}

impl Shield for HazardGuard {
    fn protect<T>(&self, src: &AtomicUsize, ord: Ordering) -> usize {
        let Some(local) = self.local() else {
            return src.load(ord);
        };
        debug_assert!(local.guard_count.get() > 0, "protect outside a pin");
        let mask = mem::align_of::<T>() - 1;
        let slot = local.next_slot();
        let mut cur = src.load(ord);
        loop {
            let addr = cur & !mask;
            publish(slot, addr);
            if addr == 0 {
                return cur;
            }
            let again = src.load(ord);
            if again == cur {
                return cur;
            }
            cur = again;
        }
    }

    unsafe fn defer_retire<F: FnOnce()>(&self, addr: usize, f: F) {
        match self.local() {
            None => f(),
            Some(local) => {
                let f = move || {
                    HAZARD_LEDGER.reclaimed();
                    f();
                };
                local.retire(Retired {
                    addr,
                    deferred: Deferred::new(f),
                });
            }
        }
    }

    fn flush(&self) {
        if let Some(local) = self.local() {
            local.scan();
        }
    }
}

impl Drop for HazardGuard {
    fn drop(&mut self) {
        let Some(local) = self.local() else { return };
        let n = local.guard_count.get() - 1;
        local.guard_count.set(n);
        if n == 0 {
            // Outermost unpin: retract every protection and rewind the ring.
            for slot in &local.record().slots {
                if slot.load(Ordering::Relaxed) != 0 {
                    slot.store(0, Ordering::Release);
                }
            }
            local.cursor.set(0);
        }
    }
}

impl std::fmt::Debug for HazardGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("HazardGuard { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Boxes a u64, returning (address, closure that frees and counts).
    fn tracked_alloc(drops: &Arc<AtomicUsize>) -> (usize, impl FnOnce() + Send + 'static) {
        let addr = Box::into_raw(Box::new(0u64)) as usize;
        let drops = Arc::clone(drops);
        (addr, move || {
            // SAFETY: freed exactly once by the retire machinery.
            drop(unsafe { Box::from_raw(addr as *mut u64) });
            drops.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn protect_blocks_reclaim_until_guard_drops() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (addr, free) = tracked_alloc(&drops);
        let src = AtomicUsize::new(addr);

        let g = Hazard::pin();
        let seen = g.protect::<u64>(&src, Ordering::Acquire);
        assert_eq!(seen, addr);

        // Retire the node from a nested guard and force scans: the slot
        // must keep it alive.
        unsafe { g.defer_retire(addr, free) };
        g.flush();
        g.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "slot must pin the node");
        assert!(Hazard::pending() >= 1);

        drop(g);
        Hazard::collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "freed after unpin");
    }

    #[test]
    fn garbage_stays_bounded_without_active_hazards() {
        let drops = Arc::new(AtomicUsize::new(0));
        const N: usize = 10 * SCAN_THRESHOLD;
        let g = Hazard::pin();
        for _ in 0..N {
            let (addr, free) = tracked_alloc(&drops);
            unsafe { g.defer_retire(addr, free) };
        }
        drop(g);
        Hazard::collect();
        assert_eq!(drops.load(Ordering::SeqCst), N, "all freed eventually");
        // The per-thread list can never exceed the scan trigger while no
        // slot is held (ledger is global, so other tests may add a bit).
        assert!(
            Hazard::pending() < 2 * SCAN_THRESHOLD,
            "pending {} not bounded",
            Hazard::pending()
        );
    }

    #[test]
    fn slot_ring_recycles_after_window() {
        // Protecting more than SLOTS_PER_RECORD addresses reuses slots; the
        // most recent protection must still hold.
        let g = Hazard::pin();
        let words: Vec<AtomicUsize> = (0..2 * SLOTS_PER_RECORD)
            .map(|i| AtomicUsize::new((i + 1) << 3))
            .collect();
        for w in &words {
            let v = g.protect::<u64>(w, Ordering::Acquire);
            assert_eq!(v, w.load(Ordering::Relaxed));
        }
        drop(g);
    }

    #[test]
    fn orphaned_retires_adopted_by_other_thread() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (addr, free) = tracked_alloc(&drops);
        let src = AtomicUsize::new(addr);

        // Main thread protects the node...
        let g = Hazard::pin();
        assert_eq!(g.protect::<u64>(&src, Ordering::Acquire), addr);

        // ...a worker retires it and exits; its final scan cannot free it,
        // so the entry lands on the orphan list.
        let d2 = Arc::clone(&drops);
        std::thread::spawn(move || {
            let g = Hazard::pin();
            unsafe { g.defer_retire(addr, free) };
            g.flush();
            assert_eq!(d2.load(Ordering::SeqCst), 0);
        })
        .join()
        .unwrap();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "still protected");

        // Once we unpin and scan, the orphan is adopted and freed.
        drop(g);
        Hazard::collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unprotected_guard_runs_retires_immediately_and_loads_plainly() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (addr, free) = tracked_alloc(&drops);
        let src = AtomicUsize::new(addr);
        let g = unsafe { Hazard::unprotected() };
        assert_eq!(g.protect::<u64>(&src, Ordering::Acquire), addr);
        unsafe { g.defer_retire(addr, free) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        g.flush(); // no-op, must not crash
    }

    #[test]
    fn nested_guards_retract_slots_only_at_outermost_drop() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (addr, free) = tracked_alloc(&drops);
        let src = AtomicUsize::new(addr);

        let outer = Hazard::pin();
        let seen = outer.protect::<u64>(&src, Ordering::Acquire);
        assert_eq!(seen, addr);
        {
            let inner = Hazard::pin();
            unsafe { inner.defer_retire(addr, free) };
            drop(inner);
        }
        // Inner drop must not have retracted the outer protection.
        outer.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(outer);
        Hazard::collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_protect_and_retire_stress() {
        use std::sync::atomic::AtomicBool;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(AtomicUsize::new(Box::into_raw(Box::new(0u64)) as usize));
        let mut handles = Vec::new();
        // Writers swap in fresh nodes and retire the old ones.
        for _ in 0..2 {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let fresh = Box::into_raw(Box::new(0u64)) as usize;
                    let old = shared.swap(fresh, Ordering::AcqRel);
                    let g = Hazard::pin();
                    unsafe {
                        g.defer_retire(old, move || {
                            drop(Box::from_raw(old as *mut u64));
                        })
                    };
                }
            }));
        }
        // Readers protect and dereference.
        for _ in 0..2 {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = Hazard::pin();
                    let addr = g.protect::<u64>(&shared, Ordering::Acquire);
                    // SAFETY: `shared` is a structure field (never retired
                    // while the test runs), so protect's validation
                    // suffices for the deref.
                    let v = unsafe { *(addr as *const u64) };
                    assert_eq!(v, 0);
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let last = shared.load(Ordering::Acquire);
        drop(unsafe { Box::from_raw(last as *mut u64) });
        Hazard::collect();
    }
}
