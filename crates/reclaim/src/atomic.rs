//! Tagged atomic pointers: [`Atomic`], [`Owned`], [`Shared`].
//!
//! The unused low bits of a well-aligned pointer store a small integer
//! *tag*. The paper's authors note that "Java does not allow us to set flag
//! bits in pointers (to distinguish among the types of pointed-to nodes)"
//! and pay an extra word per node instead; in Rust we can offer both (the
//! synchronous queues use a mode word for fidelity to the paper, and the
//! ablation benches exercise tags).

use crate::reclaimer::{Epoch, Reclaimer, Shield};
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bit mask of the tag bits available for `T` (alignment − 1).
#[inline]
fn low_bits<T>() -> usize {
    mem::align_of::<T>() - 1
}

#[inline]
fn compose<T>(raw: *const T, tag: usize) -> usize {
    debug_assert_eq!(raw as usize & low_bits::<T>(), 0, "unaligned pointer");
    (raw as usize) | (tag & low_bits::<T>())
}

#[inline]
fn decompose<T>(data: usize) -> (*const T, usize) {
    (
        (data & !low_bits::<T>()) as *const T,
        data & low_bits::<T>(),
    )
}

/// Types that can be passed as the "new" operand of atomic operations.
pub trait Pointer<T> {
    /// The composed pointer+tag word.
    fn into_usize(self) -> usize;
    /// Rebuilds the value from a composed word.
    ///
    /// # Safety
    ///
    /// `data` must have come from `into_usize` of the same impl, with
    /// ownership transferred to the caller.
    unsafe fn from_usize(data: usize) -> Self;
}

/// An owned, heap-allocated `T` with a tag — the unique-ownership stage of
/// a node's life, before it is published into a structure.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

/// A tagged pointer valid for the lifetime of a guard borrow.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

/// A tagged atomic pointer to `T`, reclaimed through the backend `R`
/// (defaulted to [`Epoch`] so pre-trait code compiles unchanged).
///
/// `R` only matters for [`Atomic::load`], which routes the read through
/// [`Shield::protect`] of `R`'s guard type — a plain load for the epoch
/// backend, a publish-and-revalidate loop for hazard pointers.
pub struct Atomic<T, R = Epoch> {
    data: AtomicUsize,
    _marker: PhantomData<(*mut T, R)>,
}

/// Error type of [`Atomic::compare_exchange`]: the actual current value and
/// the not-inserted new value (so callers can retry without reallocating).
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The rejected new value, returned to the caller.
    pub new: P,
}

impl<T, P: Pointer<T>> fmt::Debug for CompareExchangeError<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------- Owned --

impl<T> Owned<T> {
    /// Heap-allocates `value` with tag 0.
    pub fn new(value: T) -> Self {
        Owned {
            data: compose(Box::into_raw(Box::new(value)), 0),
            _marker: PhantomData,
        }
    }

    /// Returns the tag.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// Returns the same allocation with the tag replaced.
    pub fn with_tag(self, tag: usize) -> Self {
        let data = self.data;
        mem::forget(self);
        let (raw, _) = decompose::<T>(data);
        Owned {
            data: compose(raw, tag),
            _marker: PhantomData,
        }
    }

    /// Converts into a [`Shared`] bound to `_guard` (any backend's guard
    /// type), relinquishing unique ownership (the pointer is now managed by
    /// the caller's protocol).
    pub fn into_shared<'g, G>(self, _guard: &'g G) -> Shared<'g, T> {
        let data = self.data;
        mem::forget(self);
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// Wraps an existing allocation (tag 0).
    pub fn from_box(b: Box<T>) -> Self {
        Owned {
            data: compose(Box::into_raw(b), 0),
            _marker: PhantomData,
        }
    }

    /// Unwraps the allocation.
    pub fn into_box(self) -> Box<T> {
        let (raw, _) = decompose::<T>(self.data);
        mem::forget(self);
        // SAFETY: Owned uniquely owns the Box-allocated pointer.
        unsafe { Box::from_raw(raw as *mut T) }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: unique ownership of a valid allocation.
        unsafe { &*raw }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: unique ownership of a valid allocation.
        unsafe { &mut *(raw as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: unique ownership.
        drop(unsafe { Box::from_raw(raw as *mut T) });
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Owned")
            .field("value", &**self)
            .field("tag", &self.tag())
            .finish()
    }
}

// --------------------------------------------------------------- Shared --

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Raw pointer with the tag stripped.
    pub fn as_raw(&self) -> *const T {
        decompose::<T>(self.data).0
    }

    /// True if the pointer (ignoring tag) is null.
    pub fn is_null(&self) -> bool {
        self.as_raw().is_null()
    }

    /// The tag bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// Same pointer, different tag.
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        let (raw, _) = decompose::<T>(self.data);
        Shared {
            data: compose(raw, tag),
            _marker: PhantomData,
        }
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and protected (loaded under the guard
    /// whose lifetime brands this `Shared`, from a structure that defers
    /// destruction through the same collector).
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: per caller contract.
        unsafe { &*self.as_raw() }
    }

    /// `Some(&T)` if non-null.
    ///
    /// # Safety
    ///
    /// As for [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: per caller contract.
        unsafe { self.as_raw().as_ref() }
    }

    /// Reclaims unique ownership.
    ///
    /// # Safety
    ///
    /// The caller must guarantee no other thread can reach the pointer
    /// (typically: it was just unlinked and the caller has exclusive
    /// access, or the structure is being dropped).
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null());
        // SAFETY: per caller contract.
        unsafe { Owned::from_usize(self.data) }
    }

    /// Pointer equality including tags.
    pub fn ptr_eq(&self, other: &Shared<'_, T>) -> bool {
        self.data == other.data
    }

    /// Builds a `Shared` from a raw pointer (tag 0).
    ///
    /// # Safety
    ///
    /// The pointer must be protected for the chosen lifetime by the same
    /// means `load` would provide: a pin covering its reachability, or a
    /// reference count / exclusive access held by the caller.
    pub unsafe fn from_raw(raw: *const T) -> Shared<'g, T> {
        debug_assert_eq!(raw as usize & low_bits::<T>(), 0, "unaligned pointer");
        Shared {
            data: raw as usize,
            _marker: PhantomData,
        }
    }
}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("raw", &self.as_raw())
            .field("tag", &self.tag())
            .finish()
    }
}

impl<T> Default for Shared<'_, T> {
    fn default() -> Self {
        Shared::null()
    }
}

// --------------------------------------------------------------- Atomic --

impl<T, R> Atomic<T, R> {
    /// Heap-allocates `value` and points at it (tag 0).
    pub fn new(value: T) -> Self {
        Atomic {
            data: AtomicUsize::new(compose(Box::into_raw(Box::new(value)), 0)),
            _marker: PhantomData,
        }
    }

    /// A null atomic pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Takes ownership of an [`Owned`].
    pub fn from_owned(owned: Owned<T>) -> Self {
        Atomic {
            data: AtomicUsize::new(owned.into_usize()),
            _marker: PhantomData,
        }
    }

    /// Reclaims the pointee.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive access (`&mut`-like) and the pointer must
    /// be non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        // SAFETY: per caller contract.
        unsafe { Owned::from_usize(self.data.into_inner()) }
    }
}

impl<T, R: Reclaimer> Atomic<T, R> {
    /// Loads the pointer; the result is protected by `_guard`.
    ///
    /// Under bounded-slot backends the protection is routed through
    /// [`Shield::protect`]; see its contract for when the result may be
    /// dereferenced (structure-field sources: directly; node-field sources:
    /// only after re-validating a structure field).
    pub fn load<'g>(&self, ord: Ordering, guard: &'g R::Guard) -> Shared<'g, T> {
        // SAFETY: Shared::from_usize on a word this Atomic holds, protected
        // per the Shield contract.
        unsafe { Shared::from_usize(guard.protect::<T>(&self.data, ord)) }
    }

    /// Stores a new pointer, discarding (not freeing) the old one.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Atomically swaps the pointer, returning the previous value.
    ///
    /// The result is **not** routed through [`Shield::protect`]: under
    /// bounded-slot backends it may only be compared or retired, never
    /// dereferenced (the epoch pin covers it; a hazard slot does not).
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g R::Guard,
    ) -> Shared<'g, T> {
        // SAFETY: previous word was held by this Atomic.
        unsafe { Shared::from_usize(self.data.swap(new.into_usize(), ord)) }
    }

    /// Atomically compares-and-exchanges the pointer. On failure the new
    /// value is handed back so callers can retry without reallocating.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g R::Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.into_usize(), new_data, success, failure)
        {
            // SAFETY: words originate from this Atomic / the `new` operand.
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            Err(actual) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(actual) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }

    /// Weak compare-exchange: may fail spuriously (maps to LL/SC on
    /// architectures that have it), so it must be used in a loop. On the
    /// retry-loop-heavy paths of lock-free structures this can generate
    /// better code than the strong version.
    pub fn compare_exchange_weak<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g R::Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange_weak(current.into_usize(), new_data, success, failure)
        {
            // SAFETY: words originate from this Atomic / the `new` operand.
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            Err(actual) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(actual) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }

    /// Bitwise OR on the tag bits; returns the previous value (subject to
    /// the same no-deref caveat as [`Atomic::swap`] under bounded-slot
    /// backends).
    pub fn fetch_or<'g>(&self, tag: usize, ord: Ordering, _guard: &'g R::Guard) -> Shared<'g, T> {
        let prev = self.data.fetch_or(tag & low_bits::<T>(), ord);
        // SAFETY: word held by this Atomic.
        unsafe { Shared::from_usize(prev) }
    }
}

impl<T, R> Default for Atomic<T, R> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T, R> fmt::Debug for Atomic<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.data.load(Ordering::Relaxed);
        let (raw, tag) = decompose::<T>(data);
        f.debug_struct("Atomic")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

// SAFETY: an Atomic hands out &T across threads (via Shared::deref), so it
// requires T: Send + Sync, matching crossbeam-epoch. `R` is a phantom
// marker and imposes nothing.
unsafe impl<T: Send + Sync, R> Send for Atomic<T, R> {}
unsafe impl<T: Send + Sync, R> Sync for Atomic<T, R> {}
unsafe impl<T: Send> Send for Owned<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::unprotected;

    #[test]
    fn owned_roundtrip() {
        let o = Owned::new(42u64);
        assert_eq!(*o, 42);
        assert_eq!(o.tag(), 0);
        let o = o.with_tag(3);
        assert_eq!(o.tag(), 3);
        assert_eq!(*o, 42);
        let b = o.into_box();
        assert_eq!(*b, 42);
    }

    #[test]
    fn tag_bits_bounded_by_alignment() {
        // u64 has alignment 8 → 3 tag bits.
        let o = Owned::new(1u64).with_tag(0xff);
        assert_eq!(o.tag(), 0x7);
    }

    #[test]
    fn atomic_load_store_swap() {
        let g = unsafe { unprotected() };
        let a: Atomic<u64> = Atomic::new(10);
        let p = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { *p.deref() }, 10);

        let old = a.swap(Owned::new(20u64), Ordering::AcqRel, &g);
        assert_eq!(unsafe { *old.deref() }, 10);
        unsafe { drop(old.into_owned()) };

        let p = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { *p.deref() }, 20);
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let g = unsafe { unprotected() };
        let a: Atomic<u64> = Atomic::new(1);
        let cur = a.load(Ordering::Acquire, &g);

        // Failure path returns the Owned for reuse.
        let wrong = Shared::<u64>::null();
        let err = a
            .compare_exchange(
                wrong,
                Owned::new(2u64),
                Ordering::AcqRel,
                Ordering::Acquire,
                &g,
            )
            .unwrap_err();
        assert!(err.current.ptr_eq(&cur));
        let recovered = err.new;

        // Success path installs the same allocation.
        let installed = a
            .compare_exchange(cur, recovered, Ordering::AcqRel, Ordering::Acquire, &g)
            .unwrap();
        assert_eq!(unsafe { *installed.deref() }, 2);
        unsafe { drop(cur.into_owned()) };
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn shared_null_and_tags() {
        let n = Shared::<u64>::null();
        assert!(n.is_null());
        assert_eq!(n.tag(), 0);
        let t = n.with_tag(1);
        assert!(t.is_null());
        assert_eq!(t.tag(), 1);
        assert!(!t.ptr_eq(&n));
    }

    #[test]
    fn fetch_or_sets_tag() {
        let g = unsafe { unprotected() };
        let a: Atomic<u64> = Atomic::new(5);
        let before = a.fetch_or(1, Ordering::AcqRel, &g);
        assert_eq!(before.tag(), 0);
        let after = a.load(Ordering::Acquire, &g);
        assert_eq!(after.tag(), 1);
        assert_eq!(unsafe { *after.deref() }, 5);
        unsafe { drop(Box::from_raw(after.as_raw() as *mut u64)) };
    }

    #[test]
    fn compare_exchange_weak_eventually_succeeds() {
        let g = unsafe { unprotected() };
        let a: Atomic<u64> = Atomic::new(1);
        let cur = a.load(Ordering::Acquire, &g);
        let mut new = Owned::new(2u64);
        loop {
            match a.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire, &g) {
                Ok(p) => {
                    assert_eq!(unsafe { *p.deref() }, 2);
                    break;
                }
                Err(e) => {
                    // Spurious failure: the current value must be unchanged.
                    assert!(e.current.ptr_eq(&cur));
                    new = e.new;
                }
            }
        }
        unsafe { drop(cur.into_owned()) };
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn owned_from_box_and_shared_from_raw() {
        let g = unsafe { unprotected() };
        let o = Owned::from_box(Box::new(9u64));
        let raw = &*o as *const u64;
        let a: Atomic<u64> = Atomic::from_owned(o);
        let s = unsafe { Shared::from_raw(raw) };
        assert!(a.load(Ordering::Acquire, &g).ptr_eq(&s));
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn default_atomic_is_null() {
        let g = unsafe { unprotected() };
        let a = Atomic::<u64>::default();
        assert!(a.load(Ordering::Acquire, &g).is_null());
    }
}
