//! Cross-thread stress tests for the epoch collector: every deferred
//! destruction must run exactly once, and never while a reference could
//! still exist.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use synq_reclaim::{Atomic, Collector, Owned};

/// Payload whose drops are counted.
struct Tracked {
    value: u64,
    drops: Arc<AtomicUsize>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn swap_storm_drops_each_value_exactly_once() {
    const THREADS: usize = 8;
    const OPS: usize = 2_000;

    let collector = Collector::new();
    let drops = Arc::new(AtomicUsize::new(0));
    let slot: Arc<Atomic<Tracked>> = Arc::new(Atomic::new(Tracked {
        value: u64::MAX,
        drops: Arc::clone(&drops),
    }));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let collector = collector.clone();
        let slot = Arc::clone(&slot);
        let drops = Arc::clone(&drops);
        handles.push(thread::spawn(move || {
            let handle = collector.register();
            for i in 0..OPS {
                let guard = handle.pin();
                let new = Owned::new(Tracked {
                    value: (t * OPS + i) as u64,
                    drops: Arc::clone(&drops),
                });
                let old = slot.swap(new, Ordering::AcqRel, &guard);
                // Read through the old pointer before retiring it — this is
                // the access that epoch reclamation must keep safe.
                let v = unsafe { old.deref().value };
                assert!(v == u64::MAX || v < (THREADS * OPS) as u64);
                unsafe { guard.defer_destroy(old) };
            }
            handle.flush();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // THREADS*OPS values were retired; the final occupant is still live.
    // Dropping the collector runs all leftover garbage.
    let final_ptr = {
        let handle = collector.register();
        let guard = handle.pin();
        let p = slot.load(Ordering::Acquire, &guard);
        p.as_raw() as usize
    };
    drop(collector);
    assert_eq!(drops.load(Ordering::SeqCst), THREADS * OPS);

    // Free the survivor.
    unsafe { drop(Box::from_raw(final_ptr as *mut Tracked)) };
    assert_eq!(drops.load(Ordering::SeqCst), THREADS * OPS + 1);
}

#[test]
fn readers_never_observe_freed_memory() {
    // Writers continually replace a canary value; readers validate it.
    // A use-after-free shows up as a canary mismatch (or crash under
    // sanitizers).
    const CANARY: u64 = 0xDEAD_BEEF_CAFE_F00D;
    const READERS: usize = 4;
    const WRITERS: usize = 2;
    const OPS: usize = 3_000;

    let collector = Collector::new();
    let drops = Arc::new(AtomicUsize::new(0));
    let slot: Arc<Atomic<Tracked>> = Arc::new(Atomic::new(Tracked {
        value: CANARY,
        drops: Arc::clone(&drops),
    }));
    let stop = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for _ in 0..READERS {
        let collector = collector.clone();
        let slot = Arc::clone(&slot);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let handle = collector.register();
            while stop.load(Ordering::Relaxed) == 0 {
                let guard = handle.pin();
                let p = slot.load(Ordering::Acquire, &guard);
                let v = unsafe { p.deref().value };
                assert_eq!(v, CANARY, "reader observed freed/overwritten node");
            }
        }));
    }
    for _ in 0..WRITERS {
        let collector = collector.clone();
        let slot = Arc::clone(&slot);
        let drops = Arc::clone(&drops);
        handles.push(thread::spawn(move || {
            let handle = collector.register();
            for _ in 0..OPS {
                let guard = handle.pin();
                let new = Owned::new(Tracked {
                    value: CANARY,
                    drops: Arc::clone(&drops),
                });
                let old = slot.swap(new, Ordering::AcqRel, &guard);
                unsafe { guard.defer_destroy(old) };
            }
        }));
    }

    // Let writers finish, then stop readers.
    for h in handles.drain(READERS..) {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    let survivor = {
        let handle = collector.register();
        let guard = handle.pin();
        slot.load(Ordering::Acquire, &guard).as_raw() as usize
    };
    drop(collector);
    assert_eq!(drops.load(Ordering::SeqCst), WRITERS * OPS);
    unsafe { drop(Box::from_raw(survivor as *mut Tracked)) };
}

#[test]
fn many_collectors_are_independent() {
    let drops_a = Arc::new(AtomicUsize::new(0));
    let drops_b = Arc::new(AtomicUsize::new(0));
    let a = Collector::new();
    let b = Collector::new();
    let ha = a.register();
    let hb = b.register();

    // Pin collector B forever; it must not block A's reclamation.
    let _guard_b = hb.pin();

    {
        let guard = ha.pin();
        let d = Arc::clone(&drops_a);
        unsafe {
            guard.defer_unchecked(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
    }
    for _ in 0..16 {
        ha.flush();
        if drops_a.load(Ordering::SeqCst) == 1 {
            break;
        }
    }
    assert_eq!(drops_a.load(Ordering::SeqCst), 1);
    assert_eq!(drops_b.load(Ordering::SeqCst), 0);
}

#[test]
fn heavy_defer_volume_is_bounded_by_flushes() {
    // Retire far more objects than one bag holds; everything must be freed
    // once the collector drops.
    let collector = Collector::new();
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let handle = collector.register();
        for round in 0..100 {
            let guard = handle.pin();
            for _ in 0..100 {
                let d = Arc::clone(&drops);
                unsafe {
                    guard.defer_unchecked(move || {
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }
            drop(guard);
            if round % 10 == 0 {
                handle.flush();
            }
        }
    }
    drop(collector);
    assert_eq!(drops.load(Ordering::SeqCst), 100 * 100);
}
