//! Property tests for the epoch collector: under arbitrary sequences of
//! pin/defer/flush operations, every deferred closure runs exactly once,
//! and never while a guard from before its deferral is still alive.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use synq_reclaim::Collector;

#[derive(Debug, Clone)]
enum Op {
    Pin,
    Unpin,
    Defer,
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Pin),
        Just(Op::Unpin),
        Just(Op::Defer),
        Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_deferral_runs_exactly_once(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let collector = Collector::new();
        let handle = collector.register();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut deferred_total = 0usize;
        let mut guards = Vec::new();

        for op in ops {
            match op {
                Op::Pin => {
                    if guards.len() < 8 {
                        guards.push(handle.pin());
                    }
                }
                Op::Unpin => {
                    guards.pop();
                }
                Op::Defer => {
                    let g = match guards.last() {
                        Some(g) => g,
                        None => {
                            guards.push(handle.pin());
                            guards.last().unwrap()
                        }
                    };
                    let c = Arc::clone(&counter);
                    unsafe {
                        g.defer_unchecked(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    deferred_total += 1;
                }
                Op::Flush => {
                    // Flushing while pinned is allowed; it just may not be
                    // able to advance the epoch.
                    handle.flush();
                }
            }
            // Deferred closures must never run more often than deferred.
            prop_assert!(counter.load(Ordering::SeqCst) <= deferred_total);
        }

        drop(guards);
        drop(handle);
        drop(collector); // runs all leftover garbage
        prop_assert_eq!(counter.load(Ordering::SeqCst), deferred_total);
    }

    #[test]
    fn guards_protect_against_running_deferrals(
        pre_defers in 1usize..40,
        flushes in 1usize..8,
    ) {
        // While an *older* guard is alive, deferrals made after it pinned
        // must not run, no matter how hard we flush from another handle.
        let collector = Collector::new();
        let blocker_handle = collector.register();
        let blocker = blocker_handle.pin();

        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let collector = &collector;
            let counter = &counter;
            s.spawn(move || {
                let h = collector.register();
                {
                    let g = h.pin();
                    for _ in 0..pre_defers {
                        let c = Arc::clone(counter);
                        unsafe {
                            g.defer_unchecked(move || {
                                c.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    }
                }
                for _ in 0..flushes {
                    h.flush();
                }
            });
        });
        prop_assert_eq!(counter.load(Ordering::SeqCst), 0, "freed under an older pin");

        drop(blocker);
        drop(blocker_handle);
        drop(collector);
        prop_assert_eq!(counter.load(Ordering::SeqCst), pre_defers);
    }
}
