//! The stalled-thread garbage-bound regression test (DESIGN §4.12): with
//! one reader parked mid-critical-section, the epoch backend's
//! unreclaimed-garbage population grows with the retire count (the global
//! grace period is frozen), while the hazard backend's peak stays bounded
//! by a small multiple of its per-thread scan threshold no matter how much
//! is retired.
//!
//! Both backends share a process-wide garbage ledger, so the two scenarios
//! run sequentially inside a single `#[test]` — do not split them into
//! separate functions, or the default parallel test runner interleaves
//! their ledger traffic.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use synq_reclaim::{Epoch, Hazard, Reclaimer, Shield, SCAN_THRESHOLD};

/// Retires `count` heap allocations, one short guard per retire (the
/// steady-state structure pattern: guards drop promptly, garbage is the
/// backend's to clean).
fn churn<R: Reclaimer>(count: usize) {
    for _ in 0..count {
        let guard = R::pin();
        let addr = Box::into_raw(Box::new(0u64)) as usize;
        // SAFETY: the allocation is unlinked (never shared) and retired
        // exactly once; the closure only frees it.
        unsafe { guard.defer_retire(addr, move || drop(Box::from_raw(addr as *mut u64))) };
        drop(guard);
    }
}

/// Churns `count` retires while a second thread is parked holding a pinned
/// guard with one published hazard — the injected stall. Returns the
/// ledger's peak pending population observed for the sweep.
fn peak_garbage_under_stall<R: Reclaimer>(count: usize) -> usize {
    for _ in 0..4 {
        R::collect();
    }
    R::reset_peak();

    let stop = Arc::new(AtomicBool::new(false));
    let pinned = Arc::new(AtomicBool::new(false));
    let stalled = {
        let stop = Arc::clone(&stop);
        let pinned = Arc::clone(&pinned);
        std::thread::spawn(move || {
            let target = Box::into_raw(Box::new(0u64)) as usize;
            let src = AtomicUsize::new(target);
            let guard = R::pin();
            let _ = guard.protect::<u64>(&src, Ordering::Acquire);
            pinned.store(true, Ordering::Release);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(guard);
            // SAFETY: never shared beyond the local hazard slot.
            drop(unsafe { Box::from_raw(target as *mut u64) });
        })
    };
    while !pinned.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    churn::<R>(count);
    let peak = R::peak_pending();

    stop.store(true, Ordering::Relaxed);
    stalled.join().unwrap();
    for _ in 0..8 {
        R::collect();
    }
    peak
}

#[test]
fn hazard_garbage_bounded_while_epoch_grows_unbounded() {
    let count = 20 * SCAN_THRESHOLD;

    // Epoch: every retire after the stall pinned is stuck behind the
    // frozen grace period, so the peak tracks the retire count.
    let epoch_peak = peak_garbage_under_stall::<Epoch>(count);
    assert!(
        epoch_peak >= count / 2,
        "epoch peak {epoch_peak} did not grow with {count} retires under a stalled pin \
         — the stall injection is broken"
    );

    // Hazard: scans run at SCAN_THRESHOLD regardless of the stalled
    // reader, which protects exactly one (unrelated) allocation. The peak
    // must stay bounded by a small multiple of the threshold, independent
    // of the retire count.
    let hazard_peak = peak_garbage_under_stall::<Hazard>(count);
    assert!(
        hazard_peak <= 3 * SCAN_THRESHOLD,
        "hazard peak {hazard_peak} exceeded 3x SCAN_THRESHOLD ({}) over {count} retires \
         — stalled-reader garbage is supposed to be bounded",
        3 * SCAN_THRESHOLD
    );
    assert!(
        epoch_peak > hazard_peak,
        "epoch peak {epoch_peak} <= hazard peak {hazard_peak}: the backends are \
         indistinguishable under a stall, which contradicts the design claim"
    );

    // Once the stall releases, both backends must drain to (near) zero —
    // nothing may leak past the collect passes above.
    assert_eq!(Epoch::pending(), 0, "epoch garbage leaked after the stall");
    assert_eq!(
        Hazard::pending(),
        0,
        "hazard garbage leaked after the stall"
    );
}
