//! Hierarchical hashed timer wheel: the data structure under [`crate::timer`].
//!
//! The original global timer kept every pending deadline in one
//! `Mutex<BinaryHeap>`; a timeout storm serialised all registrations on that
//! lock and paid `O(log n)` per push under it. The wheel shards the same
//! state [`LEVELS`] x [`SLOTS`] ways — one tiny mutex per slot — so
//! registrations for different ticks never contend, and firing a tick only
//! touches the slots that are actually occupied (a per-level occupancy
//! bitmap makes the empty case a couple of atomic loads).
//!
//! # Layout
//!
//! Time is quantised into [`TICK`] (100 µs) ticks counted from the wheel's
//! `origin`. Level `l` covers deadlines `64^l ..64^(l+1)` ticks ahead of the
//! cursor in slots of `64^l` ticks each; with 4 levels the horizon is
//! `64^4` ticks ≈ 28 min, and anything further is clamped into the top
//! level (it cascades — is re-placed — as the cursor approaches, which only
//! costs a re-shelving every `64^3` ticks). A deadline is mapped to
//! `at_ticks` by *ceiling* division so an entry never fires before its
//! instant; the public contract is fire **at or after**.
//!
//! # Concurrency protocol
//!
//! `insert` is designed to run concurrently with `advance` (which a single
//! driver thread calls under an internal lock). The race to beat: an entry
//! placed in a slot whose processing point the cursor passes *while the
//! insert is in flight* would silently wait a whole ring revolution. The
//! defence is a Dekker-style handshake on (`cursor`, occupancy bitmap):
//!
//! * `advance` publishes the new cursor (`SeqCst` store) **before** reading
//!   occupancy and draining slots;
//! * `insert` pushes the entry and sets the occupancy bit (under the slot
//!   lock, `SeqCst`) **before** re-reading the cursor.
//!
//! In every interleaving at least one side sees the other: either the
//! driver's occupancy read observes the new bit (it drains the slot and
//! fires/re-places the entry), or the inserter's cursor re-read observes
//! that the cursor reached its entry's cascade point — in which case it
//! tries to take the entry back out by id: success means the insert retries
//! against the fresh cursor; failure means the driver already owns it.
//! Slot mutexes double as the happens-before edge between the two sides.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::task::Waker;
use std::time::{Duration, Instant};

/// Wheel resolution: deadlines are rounded *up* to the next tick boundary.
/// 100 µs keeps timeout lateness an order of magnitude below the storm
/// patience the server bench applies (the old heap timer slept to exact
/// deadlines, so coarse rounding here would be a regression it never had),
/// while the occupancy-guided `advance` keeps empty ticks near-free.
pub const TICK: Duration = Duration::from_micros(100);

const TICK_NANOS: u128 = 100_000;

/// Hierarchy depth.
pub const LEVELS: usize = 4;

/// Slots per level (64, so slot indices are 6 bits of `at_ticks`).
pub const SLOTS: usize = 64;

const SLOT_BITS: u32 = 6;

/// One registered timeout.
struct Entry {
    /// Absolute deadline in ticks from the wheel origin (ceiling-rounded).
    at_ticks: u64,
    /// Unique id, so a racing inserter can reclaim exactly its own entry.
    id: u64,
    waker: Waker,
}

/// One slot ring: 64 independently locked buckets plus an occupancy bitmap
/// (bit `s` set iff slot `s` is nonempty; maintained under the slot lock).
struct Level {
    occupancy: AtomicU64,
    slots: [Mutex<Vec<Entry>>; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level {
            occupancy: AtomicU64::new(0),
            slots: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Pushes under the slot lock and maintains the bitmap invariant.
    fn push(&self, slot: usize, entry: Entry) {
        let mut s = self.slots[slot].lock().expect("wheel slot poisoned");
        s.push(entry);
        self.occupancy.fetch_or(1 << slot, Ordering::SeqCst);
    }

    /// Takes the whole slot, clearing its bit. Returns an empty vec cheaply
    /// when a stale-looking bit raced with a concurrent drain.
    fn drain(&self, slot: usize) -> Vec<Entry> {
        let mut s = self.slots[slot].lock().expect("wheel slot poisoned");
        self.occupancy.fetch_and(!(1 << slot), Ordering::SeqCst);
        std::mem::take(&mut *s)
    }

    /// Removes the entry with `id` from `slot`, if it is still there.
    fn remove(&self, slot: usize, id: u64) -> Option<Entry> {
        let mut s = self.slots[slot].lock().expect("wheel slot poisoned");
        let i = s.iter().position(|e| e.id == id)?;
        let e = s.swap_remove(i);
        if s.is_empty() {
            self.occupancy.fetch_and(!(1 << slot), Ordering::SeqCst);
        }
        Some(e)
    }
}

/// Result of [`TimerWheel::insert`].
pub enum Insert {
    /// The deadline is in the future; the wheel owns the waker now.
    Armed,
    /// The deadline already passed: the waker comes straight back and the
    /// caller must invoke it (the wheel never wakes from `insert`, so
    /// arbitrary executor code cannot run inside a registration).
    Due(Waker),
}

/// A 4x64 hierarchical timer wheel. See the module docs for the layout and
/// the insert/advance handshake.
pub struct TimerWheel {
    origin: Instant,
    /// Last fully processed tick. Only `advance` (serialised by
    /// `advance_lock`) stores it; `insert` reads it lock-free.
    cursor: AtomicU64,
    advance_lock: Mutex<()>,
    next_id: AtomicU64,
    levels: [Level; LEVELS],
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("cursor", &self.cursor.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl TimerWheel {
    /// An empty wheel whose tick 0 is `origin` (registrations at or before
    /// `origin` are immediately due).
    pub fn new(origin: Instant) -> Self {
        TimerWheel {
            origin,
            cursor: AtomicU64::new(0),
            advance_lock: Mutex::new(()),
            next_id: AtomicU64::new(0),
            levels: std::array::from_fn(|_| Level::new()),
        }
    }

    /// `now` in whole elapsed ticks (floor): the last tick boundary reached.
    fn ticks_floor(&self, now: Instant) -> u64 {
        let nanos = now.saturating_duration_since(self.origin).as_nanos();
        (nanos / TICK_NANOS).min(u64::MAX as u128) as u64
    }

    /// A deadline in ticks, rounded *up* so firing at `at_ticks` is never
    /// early.
    fn ticks_ceil(&self, at: Instant) -> u64 {
        let nanos = at.saturating_duration_since(self.origin).as_nanos();
        (nanos.div_ceil(TICK_NANOS)).min(u64::MAX as u128) as u64
    }

    /// (level, slot) for a future deadline, relative to cursor position `c`.
    fn place(at_ticks: u64, c: u64) -> (usize, usize) {
        debug_assert!(at_ticks > c);
        let delta = at_ticks - c;
        // Smallest level whose span covers the delta, clamped to the top.
        let mut level = 0;
        while level + 1 < LEVELS && delta >= 1u64 << (SLOT_BITS * (level as u32 + 1)) {
            level += 1;
        }
        let slot = ((at_ticks >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// The tick at which the driver drains the slot a `(level, at_ticks)`
    /// entry lives in: the enclosing `64^level` boundary (for level 0, the
    /// deadline itself).
    fn cascade_tick(level: usize, at_ticks: u64) -> u64 {
        at_ticks & !((1u64 << (SLOT_BITS * level as u32)) - 1)
    }

    /// Registers `waker` to fire at-or-after `at`. Wait-free against other
    /// inserters of different ticks; safe against a concurrent [`advance`].
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn insert(&self, at: Instant, waker: Waker) -> Insert {
        let at_ticks = self.ticks_ceil(at);
        let mut waker = waker;
        loop {
            let c = self.cursor.load(Ordering::SeqCst);
            if at_ticks <= c {
                return Insert::Due(waker);
            }
            let (level, slot) = Self::place(at_ticks, c);
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.levels[level].push(
                slot,
                Entry {
                    at_ticks,
                    id,
                    waker,
                },
            );
            // Dekker re-check (see module docs): if the cursor has reached
            // the point at which this slot gets drained, the driver may have
            // swept it just before our push landed.
            let c2 = self.cursor.load(Ordering::SeqCst);
            if c2 < Self::cascade_tick(level, at_ticks) {
                return Insert::Armed;
            }
            match self.levels[level].remove(slot, id) {
                // Our entry is still there, but possibly stranded: take it
                // back and re-place against the fresh cursor (which may make
                // it due, or move it to a lower level).
                Some(e) => waker = e.waker,
                // The driver drained it first; it will fire or re-place it.
                None => return Insert::Armed,
            }
        }
    }

    /// Advances the cursor to `now`, collecting every waker whose deadline
    /// was reached. The caller invokes the wakers (outside all wheel locks).
    /// Serialised internally; intended for a single driver thread.
    pub fn advance(&self, now: Instant) -> Vec<Waker> {
        let _g = self.advance_lock.lock().expect("wheel advance poisoned");
        let target = self.ticks_floor(now);
        let mut cur = self.cursor.load(Ordering::SeqCst);
        let mut fired = Vec::new();
        if target <= cur {
            return fired;
        }
        // Fast path: nothing armed anywhere. Claim the span, then re-check
        // occupancy (Dekker: an insert racing with this jump either sees the
        // new cursor and reclaims, or its bit is visible to our re-check).
        if self.all_empty() {
            self.cursor.store(target, Ordering::SeqCst);
            if self.all_empty() {
                return fired;
            }
            self.sweep_all(target, &mut fired);
            return fired;
        }
        while cur < target {
            // Stop at the next cascade boundary (multiple of 64 ticks) or at
            // the target, whichever comes first. Level-0 entries need no
            // per-tick stepping because the sweep below visits every
            // occupied level-0 slot, not just the one for the current tick.
            let boundary = ((cur >> SLOT_BITS) + 1) << SLOT_BITS;
            let stop = boundary.min(target);
            // Publish before draining — the insert handshake relies on it.
            self.cursor.store(stop, Ordering::SeqCst);
            if stop.is_multiple_of(1 << SLOT_BITS) {
                // Cascade every level whose period divides `stop`, top-down
                // so re-placed entries land in levels swept afterwards.
                for level in (1..LEVELS).rev() {
                    if stop.is_multiple_of(1u64 << (SLOT_BITS * level as u32)) {
                        let slot =
                            ((stop >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                        if self.levels[level].occupancy.load(Ordering::SeqCst) & (1 << slot) != 0 {
                            for e in self.levels[level].drain(slot) {
                                self.fire_or_replace(e, stop, &mut fired);
                            }
                        }
                    }
                }
            }
            self.sweep_level0(stop, &mut fired);
            cur = stop;
            if self.all_empty() {
                // Nothing left anywhere: jump the remaining span, with the
                // same post-store re-check as the fast path above.
                self.cursor.store(target, Ordering::SeqCst);
                if !self.all_empty() {
                    self.sweep_all(target, &mut fired);
                }
                return fired;
            }
        }
        fired
    }

    /// Earliest pending deadline, if any. Occupancy-guided scan; meant for
    /// the driver deciding how long to sleep, not for hot paths. A racing
    /// insert can be missed — the driver's dirty-flag protocol re-runs the
    /// scan in that case (see `timer.rs`).
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut min: Option<u64> = None;
        for level in &self.levels {
            let mut occ = level.occupancy.load(Ordering::SeqCst);
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let s = level.slots[slot].lock().expect("wheel slot poisoned");
                for e in s.iter() {
                    min = Some(min.map_or(e.at_ticks, |m: u64| m.min(e.at_ticks)));
                }
            }
        }
        min.map(|ticks| self.origin + Duration::from_nanos(ticks.saturating_mul(TICK_NANOS as u64)))
    }

    fn all_empty(&self) -> bool {
        self.levels
            .iter()
            .all(|l| l.occupancy.load(Ordering::SeqCst) == 0)
    }

    /// Fires `e` if due at `cursor_now`, else re-places it (used while
    /// cascading; the advance lock is held, so the cursor is stable).
    fn fire_or_replace(&self, e: Entry, cursor_now: u64, fired: &mut Vec<Waker>) {
        if e.at_ticks <= cursor_now {
            fired.push(e.waker);
        } else {
            let (level, slot) = Self::place(e.at_ticks, cursor_now);
            self.levels[level].push(slot, e);
        }
    }

    /// Drains every occupied level-0 slot, firing due entries and keeping
    /// future ones in place.
    fn sweep_level0(&self, cursor_now: u64, fired: &mut Vec<Waker>) {
        let mut occ = self.levels[0].occupancy.load(Ordering::SeqCst);
        while occ != 0 {
            let slot = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let mut s = self.levels[0].slots[slot]
                .lock()
                .expect("wheel slot poisoned");
            if s.iter().any(|e| e.at_ticks <= cursor_now) {
                let mut keep = Vec::with_capacity(s.len());
                for e in s.drain(..) {
                    if e.at_ticks <= cursor_now {
                        fired.push(e.waker);
                    } else {
                        keep.push(e);
                    }
                }
                if keep.is_empty() {
                    self.levels[0]
                        .occupancy
                        .fetch_and(!(1 << slot), Ordering::SeqCst);
                }
                *s = keep;
            }
        }
    }

    /// Full-wheel rescue sweep used after a cursor jump raced an insert:
    /// fires everything due at `cursor_now` and re-places the rest.
    fn sweep_all(&self, cursor_now: u64, fired: &mut Vec<Waker>) {
        for level in (0..LEVELS).rev() {
            let mut occ = self.levels[level].occupancy.load(Ordering::SeqCst);
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                for e in self.levels[level].drain(slot) {
                    self.fire_or_replace(e, cursor_now, fired);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
    use std::sync::Arc;

    /// A waker that records its entry's index into a shared log when woken.
    fn tagged_waker(log: Arc<Mutex<Vec<usize>>>, idx: usize) -> Waker {
        struct W(Arc<Mutex<Vec<usize>>>, usize);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.lock().unwrap().push(self.1);
            }
        }
        Waker::from(Arc::new(W(log, idx)))
    }

    fn counting_waker(hits: Arc<AtomicUsize>) -> Waker {
        struct W(Arc<AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, AOrd::SeqCst);
            }
        }
        Waker::from(Arc::new(W(hits)))
    }

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let origin = Instant::now();
        let w = TimerWheel::new(origin);
        let hits = Arc::new(AtomicUsize::new(0));
        assert!(matches!(
            w.insert(
                origin + Duration::from_millis(10),
                counting_waker(Arc::clone(&hits))
            ),
            Insert::Armed
        ));
        // 9.5 ms: one tick short of the (ceiling-rounded) deadline.
        assert!(w.advance(origin + Duration::from_micros(9_500)).is_empty());
        let due = w.advance(origin + Duration::from_millis(10));
        assert_eq!(due.len(), 1);
        for waker in due {
            waker.wake();
        }
        assert_eq!(hits.load(AOrd::SeqCst), 1);
        // Exactly once: nothing left.
        assert!(w.advance(origin + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn sub_tick_deadline_rounds_up() {
        let origin = Instant::now();
        let w = TimerWheel::new(origin);
        let hits = Arc::new(AtomicUsize::new(0));
        // 20 µs from origin: must round up to tick 1, not down to "due".
        assert!(matches!(
            w.insert(origin + Duration::from_micros(20), counting_waker(hits)),
            Insert::Armed
        ));
        assert!(w.advance(origin + Duration::from_micros(90)).is_empty());
        assert_eq!(w.advance(origin + TICK).len(), 1);
    }

    #[test]
    fn past_deadline_is_due_immediately() {
        let origin = Instant::now();
        let w = TimerWheel::new(origin);
        let hits = Arc::new(AtomicUsize::new(0));
        assert!(matches!(
            w.insert(origin, counting_waker(hits)),
            Insert::Due(_)
        ));
    }

    #[test]
    fn next_deadline_is_the_minimum() {
        let origin = Instant::now();
        let w = TimerWheel::new(origin);
        assert!(w.next_deadline().is_none());
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, ms) in [70_u64, 3, 4000].into_iter().enumerate() {
            w.insert(
                origin + Duration::from_millis(ms),
                tagged_waker(Arc::clone(&log), i),
            );
        }
        assert_eq!(w.next_deadline(), Some(origin + Duration::from_millis(3)));
        w.advance(origin + Duration::from_millis(10));
        assert_eq!(w.next_deadline(), Some(origin + Duration::from_millis(70)));
    }

    #[test]
    fn cascades_across_levels_and_horizon_clamp() {
        let origin = Instant::now();
        let w = TimerWheel::new(origin);
        let log = Arc::new(Mutex::new(Vec::new()));
        // Level 1 (~0.5 s), level 2 (~5 min), level 3 (~5 h: past the 64^3
        // slot span, still inside level 3), and beyond-horizon (~2 days:
        // clamped into level 3 and re-shelved as the cursor approaches).
        let delays_ms = [500_u64, 300_000, 18_000_000, 180_000_000];
        for (i, ms) in delays_ms.into_iter().enumerate() {
            assert!(matches!(
                w.insert(
                    origin + Duration::from_millis(ms),
                    tagged_waker(Arc::clone(&log), i),
                ),
                Insert::Armed
            ));
        }
        // Walk time forward in coarse, uneven jumps well past everything.
        let mut fired = Vec::new();
        for step_ms in [137_u64, 499, 600, 70_000, 400_000, 17_000_000, 200_000_000] {
            for waker in w.advance(origin + Duration::from_millis(step_ms)) {
                waker.wake();
            }
            fired.push(log.lock().unwrap().clone());
        }
        // Each fires exactly once, in deadline order across steps.
        let final_log = log.lock().unwrap().clone();
        assert_eq!(final_log, vec![0, 1, 2, 3]);
        // And never before its deadline: entry 0 (500 ms) must not be in
        // the 499 ms snapshot.
        assert!(fired[1].is_empty());
    }

    proptest::proptest! {
        /// Oracle check: every registration fires exactly once, never
        /// before its (ceiling-rounded) deadline tick, and exactly in the
        /// advance step that first covers it — compared against a plain
        /// sorted list of deadlines.
        #[test]
        fn firing_matches_sorted_oracle(
            delays_us in proptest::collection::vec(0_u64..=400_000_000, 1..48),
            steps_us in proptest::collection::vec(1_u64..=150_000_000, 1..12),
        ) {
            let origin = Instant::now();
            let w = TimerWheel::new(origin);
            let log = Arc::new(Mutex::new(Vec::new()));
            // Oracle: deadline of entry i in ticks (1 tick = 1 ms = 1000 us,
            // ceiling-rounded, matching the wheel's contract).
            let at_ticks: Vec<u64> = delays_us.iter().map(|us| us.div_ceil(1000)).collect();
            for (i, us) in delays_us.iter().enumerate() {
                match w.insert(
                    origin + Duration::from_micros(*us),
                    tagged_waker(Arc::clone(&log), i),
                ) {
                    Insert::Armed => {}
                    // Only a zero-tick deadline can be due on a fresh wheel.
                    Insert::Due(waker) => {
                        proptest::prop_assert_eq!(at_ticks[i], 0);
                        waker.wake();
                    }
                }
            }
            let mut now_us = 0_u64;
            let mut prev_ticks = 0_u64;
            let mut steps = steps_us.clone();
            // Final step far past every deadline: everything must drain.
            steps.push(500_000_000);
            for step in steps {
                now_us += step;
                let target_ticks = now_us / 1000; // floor, like the wheel
                let before = log.lock().unwrap().len();
                for waker in w.advance(origin + Duration::from_micros(now_us)) {
                    waker.wake();
                }
                let log_now = log.lock().unwrap().clone();
                // Exactly the oracle's due set fired in this step.
                let mut got: Vec<usize> = log_now[before..].to_vec();
                got.sort_unstable();
                let mut want: Vec<usize> = (0..at_ticks.len())
                    .filter(|&i| at_ticks[i] > prev_ticks && at_ticks[i] <= target_ticks)
                    .collect();
                // Entries due at tick 0 were fired at insert time.
                if prev_ticks == 0 {
                    want.retain(|&i| at_ticks[i] != 0);
                }
                want.sort_unstable();
                proptest::prop_assert_eq!(got, want);
                prev_ticks = target_ticks;
            }
            // Everything fired exactly once.
            let mut all = log.lock().unwrap().clone();
            all.sort_unstable();
            proptest::prop_assert_eq!(all, (0..at_ticks.len()).collect::<Vec<_>>());
        }
    }
}
