//! A dependency-free `block_on` driver.
//!
//! `synq-async` is runtime-agnostic: its futures only need *something*
//! that polls them and honours wakers. This module is that something, in
//! its smallest form — the calling thread parks between polls
//! ([`block_on`]), or round-robins a batch of futures on one thread
//! ([`block_on_all`], used by the MPMC stress tests to interleave many
//! tasks without a real executor). It exists so the crate's tests, doc
//! examples, and benchmarks need no external runtime; any executor
//! (tokio, smol, ...) works just as well.

use std::future::Future;
use std::pin::{pin, Pin};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use synq_primitives::{Parker, Unparker};

/// Wakes the driving thread through its one-permit parker. An unpark
/// before the park (the wake-before-pending race) is remembered by the
/// permit, so no wakeup is ever lost.
struct ThreadWaker(Unparker);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Polls `future` to completion on the calling thread, parking between
/// polls.
///
/// # Examples
///
/// ```
/// let out = synq_async::block_on(async { 2 + 2 });
/// assert_eq!(out, 4);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let parker = Parker::new();
    let waker = Waker::from(Arc::new(ThreadWaker(parker.unparker())));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => parker.park(),
        }
    }
}

/// One scheduled future in [`block_on_all`]'s run queue.
struct Task<F: Future> {
    future: Pin<Box<F>>,
    /// Set by this task's waker; cleared just before each poll. Starts
    /// true so every task gets an initial poll.
    ready: Arc<Readiness>,
    waker: Waker,
    output: Option<F::Output>,
}

/// Shared between a task and its waker: a readiness flag plus the driving
/// thread's unparker.
struct Readiness {
    ready: AtomicBool,
    unparker: Unparker,
}

impl Wake for Readiness {
    fn wake(self: Arc<Self>) {
        self.ready.store(true, Ordering::Release);
        self.unparker.unpark();
    }
}

/// Drives all `futures` concurrently on the calling thread until every one
/// has completed, returning their outputs in input order.
///
/// This is cooperative single-thread concurrency: tasks interleave at
/// `await` points, exactly what the stress tests need to exercise
/// many-producer/many-consumer rendezvous without a multi-thread runtime.
/// (A future that blocks its thread would deadlock here — but blocking is
/// precisely what these futures never do.)
pub fn block_on_all<F: Future>(futures: Vec<F>) -> Vec<F::Output> {
    let parker = Parker::new();
    let mut tasks: Vec<Task<F>> = futures
        .into_iter()
        .map(|f| {
            let ready = Arc::new(Readiness {
                ready: AtomicBool::new(true),
                unparker: parker.unparker(),
            });
            Task {
                future: Box::pin(f),
                waker: Waker::from(Arc::clone(&ready)),
                ready,
                output: None,
            }
        })
        .collect();
    let mut remaining = tasks.len();
    while remaining > 0 {
        let mut progressed = false;
        for task in &mut tasks {
            if task.output.is_some() || !task.ready.ready.swap(false, Ordering::Acquire) {
                continue;
            }
            progressed = true;
            let mut cx = Context::from_waker(&task.waker);
            if let Poll::Ready(out) = task.future.as_mut().poll(&mut cx) {
                task.output = Some(out);
                remaining -= 1;
            }
        }
        if remaining > 0 && !progressed {
            parker.park();
        }
    }
    tasks
        .into_iter()
        .map(|t| t.output.expect("all tasks completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_pending_then_ready() {
        // A future that must be woken once from another thread.
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = u32;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0 {
                    Poll::Ready(7)
                } else {
                    self.0 = true;
                    let w = cx.waker().clone();
                    std::thread::spawn(move || w.wake());
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(YieldOnce(false)), 7);
    }

    #[test]
    fn block_on_all_preserves_order() {
        let futs: Vec<_> = (0..8).map(|i| async move { i * 10 }).collect();
        assert_eq!(
            block_on_all(futs),
            (0..8).map(|i| i * 10).collect::<Vec<_>>()
        );
    }
}
