//! The transfer futures: thin state machines over [`PollTransferer`].
//!
//! Every future here is the same three-state machine:
//!
//! 1. **Init** — first poll runs [`PollTransferer::start_transfer`]: the
//!    lock-free phase either resolves immediately (a counterpart was
//!    waiting) or publishes a node and yields a permit.
//! 2. **Waiting** — each poll drives the permit
//!    ([`PendingTransfer::poll_transfer`]), which registers the task's
//!    waker before re-checking state, so the fulfiller's wake is never
//!    lost. Timed futures additionally arm the crate [`timer`]
//!    so an expired deadline gets a re-poll even if no fulfiller arrives.
//! 3. **Done** — terminal; re-polling panics, per the future contract.
//!
//! # Cancel safety
//!
//! Dropping a future mid-wait drops its permit, which runs the same
//! retract-or-concede cancellation CAS a timed-out blocking waiter runs
//! (see [`synq::pollable`]). An unsent item, or an item a fulfiller
//! deposited that this task will never read, is dropped exactly once.
//! Dropping before the first poll or after completion is trivially safe —
//! no node was published, or it was already resolved and released.

use crate::timer;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use synq::pollable::{PendingTransfer, PollTransferer, StartTransfer};
use synq::{Deadline, TransferOutcome};

enum State<T, P> {
    /// Not yet started; holds the item for a send (`None` for a recv).
    Init(Option<T>),
    /// Node published; the permit stands for it.
    Waiting(P),
    /// Resolved (or the permit was consumed); must not poll again.
    Done,
}

/// The shared engine: polls one transfer to a [`TransferOutcome`].
struct RawTransfer<'a, T: Send, Q: PollTransferer<T>> {
    structure: &'a Arc<Q>,
    deadline: Deadline,
    state: State<T, Q::Permit>,
}

impl<T: Send, Q: PollTransferer<T>> RawTransfer<'_, T, Q> {
    fn poll_raw(&mut self, cx: &mut Context<'_>) -> Poll<TransferOutcome<T>> {
        synq_obs::probe!(AsyncPolls);
        loop {
            match &mut self.state {
                State::Init(item) => {
                    let item = item.take();
                    match Q::start_transfer(self.structure, item) {
                        StartTransfer::Complete(out) => {
                            self.state = State::Done;
                            return Poll::Ready(out);
                        }
                        // Fall through to give the permit its first poll —
                        // it must register our waker (and apply an
                        // already-expired deadline) before we return.
                        StartTransfer::Pending(p) => self.state = State::Waiting(p),
                    }
                }
                State::Waiting(p) => {
                    match p.poll_transfer(cx.waker(), self.deadline, None) {
                        Poll::Ready(out) => {
                            self.state = State::Done;
                            return Poll::Ready(out);
                        }
                        Poll::Pending => {
                            synq_obs::probe!(AsyncPendings);
                            // The wait engine has no timer; arrange the
                            // deadline re-poll ourselves.
                            if let Deadline::At(at) = self.deadline {
                                timer::wake_at(at, cx.waker().clone());
                            }
                            return Poll::Pending;
                        }
                    }
                }
                State::Done => panic!("transfer future polled after completion"),
            }
        }
    }
}

macro_rules! transfer_future {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        ///
        /// Created by the methods on [`AsyncSyncQueue`](crate::AsyncSyncQueue)
        /// and [`AsyncSyncStack`](crate::AsyncSyncStack). Safe to drop at any
        /// point (see the [module docs](self)).
        #[must_use = "futures do nothing unless polled or awaited"]
        pub struct $name<'a, T: Send, Q: PollTransferer<T>> {
            raw: RawTransfer<'a, T, Q>,
        }

        impl<T: Send, Q: PollTransferer<T>> Unpin for $name<'_, T, Q> {}
    };
}

transfer_future! {
    /// Future of an untimed `send`: resolves once a consumer has taken the
    /// item.
    SendFuture
}

transfer_future! {
    /// Future of an untimed `recv`: resolves to the received item once a
    /// producer hands one over.
    RecvFuture
}

transfer_future! {
    /// Future of a timed `send`: resolves to `Ok(())` on handoff or
    /// `Err(item)` — the item handed back — if the deadline passes first.
    SendTimedFuture
}

transfer_future! {
    /// Future of a timed `recv`: resolves to `Some(item)` on handoff or
    /// `None` if the deadline passes first.
    RecvTimedFuture
}

/// Future of an untimed send on any [`PollTransferer`] structure — the
/// generic entry point the typed wrappers (and generic drivers like the
/// `server` bench) build on.
pub fn send<T: Send, Q: PollTransferer<T>>(structure: &Arc<Q>, value: T) -> SendFuture<'_, T, Q> {
    SendFuture {
        raw: RawTransfer {
            structure,
            deadline: Deadline::Never,
            state: State::Init(Some(value)),
        },
    }
}

/// Future of an untimed receive on any [`PollTransferer`] structure.
pub fn recv<T: Send, Q: PollTransferer<T>>(structure: &Arc<Q>) -> RecvFuture<'_, T, Q> {
    RecvFuture {
        raw: RawTransfer {
            structure,
            deadline: Deadline::Never,
            state: State::Init(None),
        },
    }
}

/// Future of a timed send on any [`PollTransferer`] structure: resolves to
/// `Ok(())` on handoff, `Err(item)` if `deadline` passes first.
pub fn send_timed<T: Send, Q: PollTransferer<T>>(
    structure: &Arc<Q>,
    value: T,
    deadline: Deadline,
) -> SendTimedFuture<'_, T, Q> {
    SendTimedFuture {
        raw: RawTransfer {
            structure,
            deadline,
            state: State::Init(Some(value)),
        },
    }
}

/// Future of a timed receive on any [`PollTransferer`] structure: resolves
/// to `Some(item)` on handoff, `None` if `deadline` passes first.
pub fn recv_timed<T: Send, Q: PollTransferer<T>>(
    structure: &Arc<Q>,
    deadline: Deadline,
) -> RecvTimedFuture<'_, T, Q> {
    RecvTimedFuture {
        raw: RawTransfer {
            structure,
            deadline,
            state: State::Init(None),
        },
    }
}

impl<T: Send, Q: PollTransferer<T>> Future for SendFuture<'_, T, Q> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        self.raw.poll_raw(cx).map(|out| match out {
            TransferOutcome::Transferred(None) => (),
            // Deadline::Never and no token: no other verdict is reachable.
            _ => unreachable!("untimed send cannot time out or be cancelled"),
        })
    }
}

impl<T: Send, Q: PollTransferer<T>> Future for RecvFuture<'_, T, Q> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        self.raw.poll_raw(cx).map(|out| match out {
            TransferOutcome::Transferred(Some(v)) => v,
            _ => unreachable!("untimed recv cannot time out or be cancelled"),
        })
    }
}

impl<T: Send, Q: PollTransferer<T>> Future for SendTimedFuture<'_, T, Q> {
    type Output = Result<(), T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<(), T>> {
        self.raw.poll_raw(cx).map(|out| match out {
            TransferOutcome::Transferred(None) => Ok(()),
            TransferOutcome::Timeout(Some(v)) => Err(v),
            _ => unreachable!("timed send without a token cannot be cancelled"),
        })
    }
}

impl<T: Send, Q: PollTransferer<T>> Future for RecvTimedFuture<'_, T, Q> {
    type Output = Option<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        self.raw.poll_raw(cx).map(|out| match out {
            TransferOutcome::Transferred(Some(v)) => Some(v),
            TransferOutcome::Timeout(None) => None,
            _ => unreachable!("timed recv without a token cannot be cancelled"),
        })
    }
}
