//! Broadcast cancellation for in-flight transfer futures.
//!
//! A [`CancelGate`] is a one-shot, many-listener latch: any number of
//! tasks wrap their pending futures in [`CancelGate::wrap`], and a single
//! [`CancelGate::fire`] resolves every one of them to `None` — the
//! "cancellation wave" of a server draining connections on shutdown or
//! deadline. The wrapped future itself is simply *dropped*, which is
//! exactly the cancel-safety contract of the transfer futures
//! ([`crate::future`]): the published node is retracted or conceded, and
//! the unsent item is released exactly once. This module adds no new
//! protocol — it only decides *when* to drop.
//!
//! # Race discipline
//!
//! The only subtle point is the classic register/check race: a task that
//! observes `fired == false`, then registers its waker, must not miss a
//! concurrent [`CancelGate::fire`]. The wrapper therefore re-checks the
//! flag *after* registering; `fire` sets the flag *before* draining the
//! waker list. Whichever order the two interleave in, either the re-check
//! sees the flag or the drain sees the waker.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct GateInner {
    fired: AtomicBool,
    waiters: Mutex<Vec<Waker>>,
}

/// A one-shot cancellation latch shared by any number of [`Cancelled`]
/// wrappers. Cloning shares the latch.
#[derive(Clone)]
pub struct CancelGate {
    inner: Arc<GateInner>,
}

impl Default for CancelGate {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelGate {
    /// A new, un-fired gate.
    pub fn new() -> CancelGate {
        CancelGate {
            inner: Arc::new(GateInner {
                fired: AtomicBool::new(false),
                waiters: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Has [`CancelGate::fire`] been called?
    pub fn is_fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Fires the gate: every current and future [`Cancelled`] wrapper on
    /// this gate resolves to `None`. Idempotent.
    pub fn fire(&self) {
        // Flag before drain: see the module docs' race discipline.
        self.inner.fired.store(true, Ordering::Release);
        let waiters = std::mem::take(&mut *self.inner.waiters.lock().unwrap());
        for w in waiters {
            w.wake();
        }
    }

    /// Wraps `future` so it resolves to `Some(output)` normally, or `None`
    /// — dropping the inner future, which retracts its pending transfer —
    /// once the gate fires.
    pub fn wrap<F: Future + Unpin>(&self, future: F) -> Cancelled<F> {
        Cancelled {
            gate: self.clone(),
            inner: Some(future),
        }
    }

    /// Registers a waker to be woken by [`CancelGate::fire`], deduplicating
    /// repeat registrations from the same task. Returns `true` if the gate
    /// had already fired (the caller must not wait).
    fn register(&self, waker: &Waker) -> bool {
        if self.is_fired() {
            return true;
        }
        {
            let mut waiters = self.inner.waiters.lock().unwrap();
            if !waiters.iter().any(|w| w.will_wake(waker)) {
                waiters.push(waker.clone());
            }
        }
        // Re-check after registering (fire sets the flag before draining):
        // exactly one of {this load, the drain} observes the other's write.
        self.is_fired()
    }
}

impl std::fmt::Debug for CancelGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelGate")
            .field("fired", &self.is_fired())
            .finish()
    }
}

/// A future wrapped by [`CancelGate::wrap`]: `Some(output)` on normal
/// completion, `None` once the gate fires first.
#[must_use = "futures do nothing unless polled or awaited"]
pub struct Cancelled<F: Future + Unpin> {
    gate: CancelGate,
    /// `None` after resolution — dropping the inner future on
    /// cancellation runs its retract-or-concede path immediately, not at
    /// wrapper drop.
    inner: Option<F>,
}

impl<F: Future + Unpin> Unpin for Cancelled<F> {}

impl<F: Future + Unpin> Future for Cancelled<F> {
    type Output = Option<F::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<F::Output>> {
        let this = &mut *self;
        let inner = this
            .inner
            .as_mut()
            .expect("cancelled future polled after completion");
        // Give the inner future priority: a transfer that is already
        // resolvable completes even if the gate fired concurrently.
        if let Poll::Ready(out) = Pin::new(inner).poll(cx) {
            this.inner = None;
            return Poll::Ready(Some(out));
        }
        if this.gate.register(cx.waker()) {
            this.inner = None; // drop = retract the pending transfer
            return Poll::Ready(None);
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{block_on, block_on_all, AsyncSyncQueue};
    use std::time::Duration;

    #[test]
    fn completes_normally_when_gate_is_idle() {
        let gate = CancelGate::new();
        let q = AsyncSyncQueue::new();
        let q2 = q.clone();
        let t = std::thread::spawn(move || block_on(q2.recv()));
        block_on(gate.wrap(q.send(7u64))).expect("gate never fired");
        assert_eq!(t.join().unwrap(), 7);
        assert!(!gate.is_fired());
    }

    #[test]
    fn fired_gate_cancels_before_first_poll() {
        let gate = CancelGate::new();
        gate.fire();
        let q: AsyncSyncQueue<u64> = AsyncSyncQueue::new();
        assert_eq!(block_on(gate.wrap(q.send(1))), None);
        // The retracted item must not be visible to a later taker.
        assert_eq!(q.try_recv(), None);
    }

    #[test]
    fn wave_cancels_a_parked_send_and_retracts_the_item() {
        let gate = CancelGate::new();
        let q: AsyncSyncQueue<u64> = AsyncSyncQueue::new();
        let waver = gate.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waver.fire();
        });
        // No consumer exists: the send parks until the wave hits it.
        assert_eq!(block_on(gate.wrap(q.send(9))), None);
        t.join().unwrap();
        assert_eq!(q.try_recv(), None, "cancelled item must be retracted");
    }

    #[test]
    fn wave_sweeps_many_connections_and_spares_completed_ones() {
        let gate = CancelGate::new();
        let q: AsyncSyncQueue<u64> = AsyncSyncQueue::new();
        // One receiver pairs with exactly one of the sends; the rest hang
        // until the wave.
        let q2 = q.clone();
        let taker = std::thread::spawn(move || block_on(q2.recv()));
        let waver = gate.clone();
        let firer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waver.fire();
        });
        let sends: Vec<_> = (0..8u64).map(|i| gate.wrap(q.send(i))).collect();
        let outcomes = block_on_all(sends);
        let completed = outcomes.iter().filter(|o| o.is_some()).count();
        assert_eq!(completed, 1, "exactly the paired send completes");
        taker.join().unwrap();
        firer.join().unwrap();
        assert_eq!(q.try_recv(), None, "every cancelled item retracted");
    }

    #[test]
    fn fire_is_idempotent_and_observable() {
        let gate = CancelGate::new();
        assert!(!gate.is_fired());
        gate.fire();
        gate.fire();
        assert!(gate.is_fired());
    }
}
