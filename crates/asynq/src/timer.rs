//! A minimal global timer: deadline wakes for pending timed transfers.
//!
//! The poll-mode wait engine underneath ([`synq::pollable`]) is
//! deliberately timer-free: a pending poll with an unexpired deadline
//! reports `Pending` and relies on *someone* re-polling once the deadline
//! passes. On a full-featured runtime that someone is the runtime's own
//! timer wheel; the `*_timed` futures in this crate work on *any* runtime,
//! so they fall back to this module — one lazily spawned driver thread over
//! a [`crate::wheel::TimerWheel`].
//!
//! Registrations are fire-and-forget: a waker fires *at or after* its
//! instant, is never cancelled, and may fire after the future it belongs
//! to has already resolved — a spurious wake, which the poll contract
//! makes harmless. Re-registering on every poll (what the futures do) is
//! likewise fine; the poll contract only obliges the *most recent* waker.
//!
//! Before PR 10 this module *was* the timer: one `Mutex<BinaryHeap>` that
//! every registration and every expiry serialised on. Now registration goes
//! straight into the wheel's per-slot locks (typically uncontended) and the
//! driver thread only coordinates with inserters through a tiny dirty-flag
//! mutex around its sleep decision:
//!
//! * the driver clears `dirty`, drains the wheel, computes the next
//!   deadline, and — **only if `dirty` is still clear** — commits to sleep
//!   until then (a futex-timed park on Linux, via
//!   [`synq_primitives::Parker`]);
//! * `wake_at` arms the wheel first, then sets `dirty` and unparks the
//!   driver if its committed wake-up is too late (or it committed to sleep
//!   forever).
//!
//! An insert that lands mid-scan thus either makes the driver re-scan
//! (`dirty` observed set at commit time) or beats the commit and adjusts it
//! via unpark; the banked-permit semantics of the parker make a spurious
//! unpark a cheap no-op. A registration never blocks behind the driver's
//! sleep or behind expiry processing.

use crate::wheel::{Insert, TimerWheel};
use std::sync::{Mutex, OnceLock};
use std::task::Waker;
use std::time::Instant;
use synq_primitives::{Parker, Unparker};

/// The driver's published sleep decision, used by `wake_at` to decide
/// whether an unpark is needed.
struct Coord {
    /// Set by `wake_at` after arming the wheel; cleared by the driver right
    /// before it scans. "The wheel changed since your scan started."
    dirty: bool,
    /// The deadline the driver committed to sleep until (`None`: either
    /// sleeping unbounded or currently mid-scan — both mean "unpark me").
    next_wake: Option<Instant>,
}

struct Timer {
    wheel: TimerWheel,
    coord: Mutex<Coord>,
    unparker: Unparker,
}

static TIMER: OnceLock<&'static Timer> = OnceLock::new();

fn timer() -> &'static Timer {
    TIMER.get_or_init(|| {
        let parker = Parker::new();
        // Leaked on purpose: the timer thread lives for the process and a
        // `static` reference lets it share the state with no refcounting.
        let t: &'static Timer = Box::leak(Box::new(Timer {
            wheel: TimerWheel::new(Instant::now()),
            coord: Mutex::new(Coord {
                dirty: false,
                next_wake: None,
            }),
            unparker: parker.unparker(),
        }));
        std::thread::Builder::new()
            .name("synq-async-timer".into())
            .spawn(move || run(t, parker))
            .expect("spawn timer thread");
        t
    })
}

fn run(t: &'static Timer, parker: Parker) {
    loop {
        {
            let mut c = t.coord.lock().expect("timer poisoned");
            c.dirty = false;
            c.next_wake = None;
        }
        // Fire everything due. `wake` can run arbitrary executor code, so
        // the wheel hands the wakers out instead of invoking them inside
        // its locks.
        for w in t.wheel.advance(Instant::now()) {
            w.wake();
        }
        let next = t.wheel.next_deadline();
        {
            let mut c = t.coord.lock().expect("timer poisoned");
            if c.dirty {
                // An insert raced the scan: its deadline may be earlier
                // than `next` (or may already be due). Re-scan.
                continue;
            }
            c.next_wake = next;
        }
        match next {
            Some(at) => {
                parker.park_deadline(at);
            }
            None => parker.park(),
        }
    }
}

/// Schedules `waker` to be woken at (or shortly after) `at`.
pub fn wake_at(at: Instant, waker: Waker) {
    // Already expired by wall clock: fire here rather than bouncing
    // through the driver thread. Checked against `Instant::now()` and not
    // the wheel cursor — the cursor lags real time whenever the driver is
    // parked, and an inline fire needs no coordination with it.
    if at <= Instant::now() {
        waker.wake();
        return;
    }
    let t = timer();
    match t.wheel.insert(at, waker) {
        Insert::Due(w) => {
            // Expired between the check above and the insert (or due at
            // the cursor's current tick already).
            w.wake();
            return;
        }
        Insert::Armed => {}
    }
    let mut c = t.coord.lock().expect("timer poisoned");
    c.dirty = true;
    // `None` means the driver is either mid-scan (the dirty flag alone
    // would do) or parked with no deadline (it must be woken) — unparking
    // covers both, and a superfluous permit is banked, not lost.
    let needs_unpark = c.next_wake.is_none_or(|nw| at < nw);
    drop(c);
    if needs_unpark {
        t.unparker.unpark();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn counting_waker(hits: Arc<AtomicUsize>) -> Waker {
        struct W(Arc<AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Waker::from(Arc::new(W(hits)))
    }

    #[test]
    fn due_waker_fires() {
        let hits = Arc::new(AtomicUsize::new(0));
        wake_at(
            Instant::now() + Duration::from_millis(20),
            counting_waker(Arc::clone(&hits)),
        );
        let start = Instant::now();
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "timer never fired"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn earlier_registration_preempts_later_sleep() {
        // Register a far deadline first, then a near one: the near one must
        // not wait behind the far one's sleep.
        let far = Arc::new(AtomicUsize::new(0));
        let near = Arc::new(AtomicUsize::new(0));
        wake_at(
            Instant::now() + Duration::from_secs(30),
            counting_waker(Arc::clone(&far)),
        );
        wake_at(
            Instant::now() + Duration::from_millis(20),
            counting_waker(Arc::clone(&near)),
        );
        let start = Instant::now();
        while near.load(Ordering::SeqCst) == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "near deadline stuck behind far sleep"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(far.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn past_deadline_fires_inline() {
        let hits = Arc::new(AtomicUsize::new(0));
        wake_at(
            Instant::now() - Duration::from_millis(5),
            counting_waker(Arc::clone(&hits)),
        );
        // `Insert::Due` fires on the registering thread, synchronously.
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn timeout_storm_fires_everything() {
        // A burst of near deadlines across many ticks: all must fire, and
        // promptly. This is the regression guard for the storm behaviour
        // the wheel was introduced to fix.
        let hits = Arc::new(AtomicUsize::new(0));
        let n = 512;
        for i in 0..n {
            wake_at(
                Instant::now() + Duration::from_millis(1 + (i % 40) as u64),
                counting_waker(Arc::clone(&hits)),
            );
        }
        let start = Instant::now();
        while hits.load(Ordering::SeqCst) < n {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "storm lost wakeups: {}/{} after {:?}",
                hits.load(Ordering::SeqCst),
                n,
                start.elapsed()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
