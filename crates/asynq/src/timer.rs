//! A minimal global timer: deadline wakes for pending timed transfers.
//!
//! The poll-mode wait engine underneath ([`synq::pollable`]) is
//! deliberately timer-free: a pending poll with an unexpired deadline
//! reports `Pending` and relies on *someone* re-polling once the deadline
//! passes. On a full-featured runtime that someone is the runtime's own
//! timer wheel; the `*_timed` futures in this crate work on *any* runtime,
//! so they fall back to this module — one lazily spawned thread holding a
//! deadline-ordered heap of [`Waker`]s.
//!
//! Registrations are fire-and-forget: a waker fires *at or after* its
//! instant, is never cancelled, and may fire after the future it belongs
//! to has already resolved — a spurious wake, which the poll contract
//! makes harmless. Re-registering on every poll (what the futures do) is
//! likewise fine; the poll contract only obliges the *most recent* waker.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::Waker;
use std::time::Instant;

struct Entry {
    at: Instant,
    waker: Waker,
}

// The heap orders entries by deadline only.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at)
    }
}

struct Timer {
    queue: Mutex<BinaryHeap<Reverse<Entry>>>,
    cvar: Condvar,
}

static TIMER: OnceLock<&'static Timer> = OnceLock::new();

fn timer() -> &'static Timer {
    TIMER.get_or_init(|| {
        // Leaked on purpose: the timer thread lives for the process and a
        // `static` reference lets it share the state with no refcounting.
        let t: &'static Timer = Box::leak(Box::new(Timer {
            queue: Mutex::new(BinaryHeap::new()),
            cvar: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("synq-async-timer".into())
            .spawn(move || run(t))
            .expect("spawn timer thread");
        t
    })
}

fn run(t: &'static Timer) {
    let mut q = t.queue.lock().expect("timer poisoned");
    loop {
        let now = Instant::now();
        // Fire everything due, collecting wakers so `wake` (which can run
        // arbitrary executor code) happens outside the lock.
        let mut due = Vec::new();
        while q.peek().is_some_and(|Reverse(e)| e.at <= now) {
            due.push(q.pop().expect("peeked").0.waker);
        }
        if !due.is_empty() {
            drop(q);
            for w in due {
                w.wake();
            }
            q = t.queue.lock().expect("timer poisoned");
            continue;
        }
        q = match q.peek() {
            None => t.cvar.wait(q).expect("timer poisoned"),
            Some(Reverse(e)) => {
                let timeout = e.at.saturating_duration_since(now);
                t.cvar.wait_timeout(q, timeout).expect("timer poisoned").0
            }
        };
    }
}

/// Schedules `waker` to be woken at (or shortly after) `at`.
pub fn wake_at(at: Instant, waker: Waker) {
    let t = timer();
    let mut q = t.queue.lock().expect("timer poisoned");
    let earliest_changed = q.peek().is_none_or(|Reverse(e)| at < e.at);
    q.push(Reverse(Entry { at, waker }));
    drop(q);
    if earliest_changed {
        t.cvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn counting_waker(hits: Arc<AtomicUsize>) -> Waker {
        struct W(Arc<AtomicUsize>);
        impl std::task::Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Waker::from(Arc::new(W(hits)))
    }

    #[test]
    fn due_waker_fires() {
        let hits = Arc::new(AtomicUsize::new(0));
        wake_at(
            Instant::now() + Duration::from_millis(20),
            counting_waker(Arc::clone(&hits)),
        );
        let start = Instant::now();
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "timer never fired"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn earlier_registration_preempts_later_sleep() {
        // Register a far deadline first, then a near one: the near one must
        // not wait behind the far one's sleep.
        let far = Arc::new(AtomicUsize::new(0));
        let near = Arc::new(AtomicUsize::new(0));
        wake_at(
            Instant::now() + Duration::from_secs(30),
            counting_waker(Arc::clone(&far)),
        );
        wake_at(
            Instant::now() + Duration::from_millis(20),
            counting_waker(Arc::clone(&near)),
        );
        let start = Instant::now();
        while near.load(Ordering::SeqCst) == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "near deadline stuck behind far sleep"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(far.load(Ordering::SeqCst), 0);
    }
}
