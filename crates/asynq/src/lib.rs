//! # synq-async — async/await front-end for the synq handoff structures
//!
//! The synchronous queues of Scherer, Lea & Scott (PPoPP 2006) pair
//! producers and consumers with no buffering: both sides wait for one
//! another and leave together. The `synq` crate waits by *parking the
//! thread*; this crate waits by *suspending the task* — same dual-queue /
//! dual-stack node protocol, same `WAITING → MATCHED/CANCELLED` state
//! machine, but the waiter registered in a node's mailbox is a
//! [`core::task::Waker`] instead of a thread unparker. A blocking `put`
//! can rendezvous with an async `recv` on the very same structure.
//!
//! * [`AsyncSyncQueue`] — the **fair** (FIFO) variant, on
//!   [`synq::SyncDualQueue`].
//! * [`AsyncSyncStack`] — the **unfair** (LIFO) variant, on
//!   [`synq::SyncDualStack`].
//!
//! Both offer `send(v).await` / `recv().await`, non-suspending
//! `try_send` / `try_recv`, and deadline-carrying `send_timed` /
//! `recv_timed`. The futures are **cancel-safe**: dropping one mid-wait
//! retracts its reservation with the same CAS a timed-out blocking waiter
//! uses, and the in-flight item (unsent, or deposited-but-unread) is
//! dropped exactly once — see [`future`].
//!
//! The crate is runtime-agnostic and dependency-free: any executor can
//! poll these futures, and the bundled [`block_on`] / [`block_on_all`]
//! driver is enough for tests, examples, and benchmarks.
//!
//! ```
//! use synq_async::{block_on_all, AsyncSyncQueue};
//!
//! let q = AsyncSyncQueue::new();
//! let (tx, rx) = (q.clone(), q);
//! let outputs = block_on_all(vec![
//!     Box::pin(async move {
//!         tx.send(7u32).await;
//!         None
//!     }) as std::pin::Pin<Box<dyn std::future::Future<Output = _>>>,
//!     Box::pin(async move { Some(rx.recv().await) }),
//! ]);
//! assert_eq!(outputs[1], Some(7));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cancel;
pub mod driver;
pub mod future;
pub mod timer;
pub mod wheel;

pub use cancel::{CancelGate, Cancelled};
pub use driver::{block_on, block_on_all};
pub use future::{RecvFuture, RecvTimedFuture, SendFuture, SendTimedFuture};

use std::sync::Arc;
use std::time::Duration;
use synq::{
    CombinerSyncQueue, Deadline, StripedSyncQueue, StripedSyncStack, SyncDualQueue, SyncDualStack,
    TimedSyncChannel,
};
use synq_transfer::BufferedChannel;

macro_rules! async_wrapper {
    (
        $(#[$doc:meta])*
        $name:ident, $inner:ident, $inner_path:literal
    ) => {
        $(#[$doc])*
        pub struct $name<T: Send> {
            inner: Arc<$inner<T>>,
        }

        impl<T: Send> Clone for $name<T> {
            fn clone(&self) -> Self {
                Self {
                    inner: Arc::clone(&self.inner),
                }
            }
        }

        impl<T: Send> Default for $name<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T: Send> std::fmt::Debug for $name<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.pad(concat!(stringify!($name), " { .. }"))
            }
        }

        impl<T: Send> $name<T> {
            /// Creates an empty handoff point.
            pub fn new() -> Self {
                Self {
                    inner: Arc::new($inner::new()),
                }
            }

            /// Wraps an existing structure, so async tasks and blocking
            /// threads can rendezvous on the same instance.
            pub fn from_arc(inner: Arc<$inner<T>>) -> Self {
                Self { inner }
            }

            #[doc = concat!("The underlying [`", $inner_path, "`], for mixed sync/async use.")]
            pub fn inner(&self) -> &Arc<$inner<T>> {
                &self.inner
            }

            /// Hands `value` to a consumer, suspending until one takes it.
            pub fn send(&self, value: T) -> SendFuture<'_, T, $inner<T>> {
                future::send(&self.inner, value)
            }

            /// Receives a value, suspending until a producer hands one over.
            pub fn recv(&self) -> RecvFuture<'_, T, $inner<T>> {
                future::recv(&self.inner)
            }

            /// Hands `value` over only if a consumer is already waiting;
            /// `Err(value)` otherwise. Never suspends.
            pub fn try_send(&self, value: T) -> Result<(), T> {
                self.inner.offer(value)
            }

            /// Takes a value only if a producer is already waiting. Never
            /// suspends.
            pub fn try_recv(&self) -> Option<T> {
                self.inner.poll()
            }

            /// Like [`send`](Self::send), but gives up — resolving to
            /// `Err(value)` — if no consumer takes the item within
            /// `patience`.
            pub fn send_timed(
                &self,
                value: T,
                patience: Duration,
            ) -> SendTimedFuture<'_, T, $inner<T>> {
                future::send_timed(&self.inner, value, Deadline::after(patience))
            }

            /// Like [`recv`](Self::recv), but gives up — resolving to
            /// `None` — if no producer arrives within `patience`.
            pub fn recv_timed(&self, patience: Duration) -> RecvTimedFuture<'_, T, $inner<T>> {
                future::recv_timed(&self.inner, Deadline::after(patience))
            }

            /// Like [`send`](Self::send), with an explicit [`Deadline`].
            pub fn send_deadline(
                &self,
                value: T,
                deadline: Deadline,
            ) -> SendTimedFuture<'_, T, $inner<T>> {
                future::send_timed(&self.inner, value, deadline)
            }

            /// Like [`recv`](Self::recv), with an explicit [`Deadline`].
            pub fn recv_deadline(&self, deadline: Deadline) -> RecvTimedFuture<'_, T, $inner<T>> {
                future::recv_timed(&self.inner, deadline)
            }
        }
    };
}

async_wrapper! {
    /// The **fair** async handoff point: strict FIFO pairing on a
    /// [`SyncDualQueue`].
    ///
    /// Cloning is cheap (`Arc`); all clones address the same queue.
    ///
    /// # Examples
    ///
    /// ```
    /// use synq_async::{block_on, AsyncSyncQueue};
    /// use synq::SyncChannel;
    /// use std::thread;
    ///
    /// let q = AsyncSyncQueue::new();
    /// let q2 = q.clone();
    /// // A *blocking* producer pairs with an *async* consumer.
    /// let t = thread::spawn(move || q2.inner().put(5u32));
    /// assert_eq!(block_on(q.recv()), 5);
    /// t.join().unwrap();
    /// ```
    AsyncSyncQueue, SyncDualQueue, "synq::SyncDualQueue"
}

async_wrapper! {
    /// The **unfair** async handoff point: LIFO pairing on a
    /// [`SyncDualStack`] (better locality, no fairness guarantee).
    ///
    /// # Examples
    ///
    /// ```
    /// use synq_async::{block_on, AsyncSyncStack};
    /// use std::time::Duration;
    ///
    /// let s: AsyncSyncStack<u8> = AsyncSyncStack::new();
    /// // Nobody is sending: a timed recv gives up cleanly.
    /// assert_eq!(block_on(s.recv_timed(Duration::from_millis(10))), None);
    /// ```
    AsyncSyncStack, SyncDualStack, "synq::SyncDualStack"
}

async_wrapper! {
    /// The **striped fair** async handoff point: contention-adaptive
    /// multi-lane routing on a [`StripedSyncQueue`] (FIFO per lane; see
    /// `synq::striped` for the global-fairness trade-off). The default
    /// lane count scales with the host's cores.
    ///
    /// # Examples
    ///
    /// ```
    /// use synq_async::{block_on, AsyncStripedQueue};
    /// use synq::SyncChannel;
    /// use std::thread;
    ///
    /// let q = AsyncStripedQueue::new();
    /// let q2 = q.clone();
    /// // A *blocking* producer pairs with an *async* consumer, whichever
    /// // lanes the two publish on.
    /// let t = thread::spawn(move || q2.inner().put(5u32));
    /// assert_eq!(block_on(q.recv()), 5);
    /// t.join().unwrap();
    /// ```
    AsyncStripedQueue, StripedSyncQueue, "synq::StripedSyncQueue"
}

async_wrapper! {
    /// The **striped unfair** async handoff point: contention-adaptive
    /// multi-lane routing on a [`StripedSyncStack`].
    ///
    /// # Examples
    ///
    /// ```
    /// use synq_async::{block_on, AsyncStripedStack};
    /// use std::time::Duration;
    ///
    /// let s: AsyncStripedStack<u8> = AsyncStripedStack::new();
    /// assert_eq!(block_on(s.recv_timed(Duration::from_millis(10))), None);
    /// ```
    AsyncStripedStack, StripedSyncStack, "synq::StripedSyncStack"
}

async_wrapper! {
    /// The **flat-combining** async handoff point: delegation-based
    /// pairing on a [`CombinerSyncQueue`] (FIFO within each combiner
    /// sweep; see `synq::combiner`). Built for oversubscription — a
    /// polled task that finds the structure quiet briefly combines on
    /// behalf of every published request, so single-threaded executors
    /// never stall waiting for a third-party combiner.
    ///
    /// # Examples
    ///
    /// ```
    /// use synq_async::{block_on, AsyncCombinerQueue};
    /// use synq::SyncChannel;
    /// use std::thread;
    ///
    /// let q = AsyncCombinerQueue::new();
    /// let q2 = q.clone();
    /// // A *blocking* producer pairs with an *async* consumer through
    /// // whichever side ends up sweeping.
    /// let t = thread::spawn(move || q2.inner().put(5u32));
    /// assert_eq!(block_on(q.recv()), 5);
    /// t.join().unwrap();
    /// ```
    AsyncCombinerQueue, CombinerSyncQueue, "synq::CombinerSyncQueue"
}

/// The **buffered** async channel: a
/// [`TransferQueue`](synq_transfer::TransferQueue) behind its
/// [`BufferedChannel`] adapter. Unlike the rendezvous wrappers above,
/// `send` buffers: it resolves as soon as the item is published — in
/// bounded mode it suspends only while the ring is full, awaiting space
/// through the queue's waiter machinery (the same wake path a blocking
/// bounded `put` parks on).
///
/// # Examples
///
/// ```
/// use synq_async::{block_on, AsyncTransferQueue};
///
/// let q = AsyncTransferQueue::bounded(4);
/// block_on(async {
///     q.send(1u32).await; // buffered: resolves immediately
///     q.send(2).await;
///     assert_eq!(q.recv().await, 1);
///     assert_eq!(q.recv().await, 2);
/// });
/// ```
pub struct AsyncTransferQueue<T: Send> {
    inner: Arc<BufferedChannel<T>>,
}

impl<T: Send> Clone for AsyncTransferQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> std::fmt::Debug for AsyncTransferQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("AsyncTransferQueue { .. }")
    }
}

impl<T: Send> AsyncTransferQueue<T> {
    /// A bounded buffered channel: `send` awaits ring space when the
    /// cycle-versioned ring (capacity rounded up to a power of two,
    /// minimum 2) is full.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            inner: Arc::new(BufferedChannel::bounded(capacity)),
        }
    }

    /// An unbounded buffered channel: `send` never suspends.
    pub fn unbounded() -> Self {
        Self {
            inner: Arc::new(BufferedChannel::unbounded()),
        }
    }

    /// Wraps an existing channel, so async tasks and blocking threads can
    /// share the same instance.
    pub fn from_arc(inner: Arc<BufferedChannel<T>>) -> Self {
        Self { inner }
    }

    /// The underlying [`BufferedChannel`], for mixed sync/async use (and
    /// for `transfer` via [`BufferedChannel::queue`]).
    pub fn inner(&self) -> &Arc<BufferedChannel<T>> {
        &self.inner
    }

    /// Ring capacity in bounded mode, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.queue().capacity()
    }

    /// Buffers `value`, suspending only while a bounded ring is full.
    pub fn send(&self, value: T) -> SendFuture<'_, T, BufferedChannel<T>> {
        future::send(&self.inner, value)
    }

    /// Receives the oldest buffered value (ring items before waiting
    /// synchronous transfers), suspending while the channel is empty.
    pub fn recv(&self) -> RecvFuture<'_, T, BufferedChannel<T>> {
        future::recv(&self.inner)
    }

    /// Buffers `value` only if it can be published immediately;
    /// `Err(value)` when a bounded ring is full. Never suspends.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        self.inner.offer(value)
    }

    /// Takes a buffered value if one is immediately available. Never
    /// suspends.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.poll()
    }

    /// Like [`send`](Self::send), but gives up — resolving to
    /// `Err(value)` — if no ring space appears within `patience`.
    pub fn send_timed(
        &self,
        value: T,
        patience: Duration,
    ) -> SendTimedFuture<'_, T, BufferedChannel<T>> {
        future::send_timed(&self.inner, value, Deadline::after(patience))
    }

    /// Like [`recv`](Self::recv), but gives up — resolving to `None` — if
    /// nothing is buffered within `patience`.
    pub fn recv_timed(&self, patience: Duration) -> RecvTimedFuture<'_, T, BufferedChannel<T>> {
        future::recv_timed(&self.inner, Deadline::after(patience))
    }

    /// Like [`send`](Self::send), with an explicit [`Deadline`].
    pub fn send_deadline(
        &self,
        value: T,
        deadline: Deadline,
    ) -> SendTimedFuture<'_, T, BufferedChannel<T>> {
        future::send_timed(&self.inner, value, deadline)
    }

    /// Like [`recv`](Self::recv), with an explicit [`Deadline`].
    pub fn recv_deadline(&self, deadline: Deadline) -> RecvTimedFuture<'_, T, BufferedChannel<T>> {
        future::recv_timed(&self.inner, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synq::SyncChannel;

    #[test]
    fn try_ops_on_empty_fail() {
        let q: AsyncSyncQueue<u32> = AsyncSyncQueue::new();
        assert_eq!(q.try_recv(), None);
        assert_eq!(q.try_send(1), Err(1));
        let s: AsyncSyncStack<u32> = AsyncSyncStack::new();
        assert_eq!(s.try_recv(), None);
        assert_eq!(s.try_send(1), Err(1));
    }

    #[test]
    fn async_send_pairs_with_blocking_take() {
        let q = AsyncSyncQueue::new();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.inner().take());
        block_on(q.send(9u64));
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn stack_async_pingpong() {
        let s = AsyncSyncStack::new();
        let (a, b) = (s.clone(), s);
        let outs = block_on_all(vec![
            Box::pin(async move {
                a.send(1u32).await;
                a.recv().await
            }) as std::pin::Pin<Box<dyn std::future::Future<Output = u32>>>,
            Box::pin(async move {
                let v = b.recv().await;
                b.send(v + 1).await;
                v
            }),
        ]);
        assert_eq!(outs, vec![2, 1]);
    }

    #[test]
    fn striped_async_send_pairs_with_blocking_take() {
        let q = AsyncStripedQueue::new();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.inner().take());
        block_on(q.send(9u64));
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn combiner_async_send_pairs_with_blocking_take() {
        let q = AsyncCombinerQueue::new();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.inner().take());
        block_on(q.send(9u64));
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn combiner_async_pingpong_single_executor() {
        // Two tasks on one executor: resolution relies entirely on the
        // permits' help-combine path (no third thread ever sweeps).
        let q = AsyncCombinerQueue::new();
        let (a, b) = (q.clone(), q);
        let outs = block_on_all(vec![
            Box::pin(async move {
                a.send(1u32).await;
                a.recv().await
            }) as std::pin::Pin<Box<dyn std::future::Future<Output = u32>>>,
            Box::pin(async move {
                let v = b.recv().await;
                b.send(v + 1).await;
                v
            }),
        ]);
        assert_eq!(outs, vec![2, 1]);
    }

    #[test]
    fn combiner_try_ops_and_timed_recv() {
        let q: AsyncCombinerQueue<u32> = AsyncCombinerQueue::new();
        assert_eq!(q.try_recv(), None);
        assert_eq!(q.try_send(1), Err(1));
        assert_eq!(block_on(q.recv_timed(Duration::from_millis(10))), None);
    }

    #[test]
    fn striped_stack_try_ops_and_timed_recv() {
        let s: AsyncStripedStack<u32> = AsyncStripedStack::new();
        assert_eq!(s.try_recv(), None);
        assert_eq!(s.try_send(1), Err(1));
        assert_eq!(block_on(s.recv_timed(Duration::from_millis(10))), None);
    }

    #[test]
    fn timed_send_expires_and_returns_item() {
        let q: AsyncSyncQueue<String> = AsyncSyncQueue::new();
        let back = block_on(q.send_timed("x".to_string(), Duration::from_millis(20)));
        assert_eq!(back, Err("x".to_string()));
    }

    #[test]
    fn timed_recv_succeeds_before_deadline() {
        let q = AsyncSyncQueue::new();
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.inner().put(3u8);
        });
        assert_eq!(block_on(q.recv_timed(Duration::from_secs(10))), Some(3));
        t.join().unwrap();
    }

    #[test]
    fn buffered_send_does_not_suspend_below_capacity() {
        let q = AsyncTransferQueue::bounded(4);
        assert_eq!(q.capacity(), Some(4));
        block_on(async {
            q.send(1u32).await;
            q.send(2).await;
            assert_eq!(q.recv().await, 1);
            assert_eq!(q.recv().await, 2);
        });
    }

    #[test]
    fn bounded_send_awaits_ring_space() {
        let q = AsyncTransferQueue::bounded(2);
        q.try_send(1u32).unwrap();
        q.try_send(2).unwrap();
        assert_eq!(q.try_send(3), Err(3));
        let q2 = q.clone();
        // A blocking consumer on the same structure frees the slot the
        // suspended async sender is waiting for.
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.inner().queue().take()
        });
        block_on(q.send(3));
        assert_eq!(t.join().unwrap(), 1);
        assert_eq!(q.try_recv(), Some(2));
        assert_eq!(q.try_recv(), Some(3));
    }

    #[test]
    fn buffered_recv_awaits_put_and_timed_send_returns_item() {
        let q = AsyncTransferQueue::bounded(2);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.inner().put(7u32);
        });
        assert_eq!(block_on(q.recv()), 7);
        t.join().unwrap();
        // Fill the ring; a timed send must give the item back on expiry.
        q.try_send(1).unwrap();
        q.try_send(2).unwrap();
        assert_eq!(block_on(q.send_timed(3, Duration::from_millis(15))), Err(3));
        // And an unbounded channel's send never suspends.
        let u: AsyncTransferQueue<u32> = AsyncTransferQueue::unbounded();
        assert_eq!(u.capacity(), None);
        block_on(async {
            for i in 0..100 {
                u.send(i).await;
            }
        });
        assert_eq!(u.inner().queue().len(), 100);
    }

    #[test]
    fn buffered_recv_gets_sync_transfer_too() {
        let q = AsyncTransferQueue::bounded(4);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.inner().queue().transfer(11u32));
        assert_eq!(block_on(q.recv()), 11);
        t.join().unwrap();
    }
}
