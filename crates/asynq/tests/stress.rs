//! Rendezvous stress under the bundled `block_on`/`block_on_all` driver:
//! ping-pong latency chains and many-producer/many-consumer conservation,
//! both single-thread (tasks interleaving at await points) and
//! cross-thread (async tasks pairing with other threads' tasks).

use std::future::Future;
use std::pin::Pin;
use std::thread;
use synq_async::{block_on, block_on_all, AsyncSyncQueue, AsyncSyncStack};

type BoxFut<T> = Pin<Box<dyn Future<Output = T>>>;

const PINGPONG_ROUNDS: usize = 2_000;
const MPMC_SIDES: usize = 4;
const MPMC_PER: usize = 500;

#[test]
fn queue_pingpong_single_thread() {
    let ping = AsyncSyncQueue::new();
    let pong = AsyncSyncQueue::new();
    let (ping_a, pong_a) = (ping.clone(), pong.clone());
    let outs: Vec<BoxFut<usize>> = vec![
        Box::pin(async move {
            let mut acc = 0usize;
            for i in 0..PINGPONG_ROUNDS {
                ping_a.send(i).await;
                acc += pong_a.recv().await;
            }
            acc
        }),
        Box::pin(async move {
            let mut acc = 0usize;
            for _ in 0..PINGPONG_ROUNDS {
                let v = ping.recv().await;
                acc += v;
                pong.send(v + 1).await;
            }
            acc
        }),
    ];
    let outs = block_on_all(outs);
    let base: usize = (0..PINGPONG_ROUNDS).sum();
    assert_eq!(outs, vec![base + PINGPONG_ROUNDS, base]);
}

#[test]
fn stack_pingpong_across_threads() {
    let ping = AsyncSyncStack::new();
    let pong = AsyncSyncStack::new();
    let (ping_b, pong_b) = (ping.clone(), pong.clone());
    let echo = thread::spawn(move || {
        block_on(async move {
            for _ in 0..PINGPONG_ROUNDS {
                let v = ping_b.recv().await;
                pong_b.send(v).await;
            }
        })
    });
    let acc = block_on(async move {
        let mut acc = 0usize;
        for i in 0..PINGPONG_ROUNDS {
            ping.send(i).await;
            acc += pong.recv().await;
        }
        acc
    });
    echo.join().unwrap();
    assert_eq!(acc, (0..PINGPONG_ROUNDS).sum::<usize>());
}

#[test]
fn queue_mpmc_single_thread_conserves_values() {
    let q = AsyncSyncQueue::new();
    let mut tasks: Vec<BoxFut<usize>> = Vec::new();
    for p in 0..MPMC_SIDES {
        let q = q.clone();
        tasks.push(Box::pin(async move {
            for i in 0..MPMC_PER {
                q.send(p * MPMC_PER + i).await;
            }
            0
        }));
    }
    for _ in 0..MPMC_SIDES {
        let q = q.clone();
        tasks.push(Box::pin(async move {
            let mut sum = 0usize;
            for _ in 0..MPMC_PER {
                sum += q.recv().await;
            }
            sum
        }));
    }
    let outs = block_on_all(tasks);
    let total: usize = outs.iter().sum();
    assert_eq!(total, (0..MPMC_SIDES * MPMC_PER).sum::<usize>());
}

#[test]
fn stack_mpmc_across_threads_conserves_values() {
    // Producers drive async sends on one thread; consumers on another.
    let s = AsyncSyncStack::new();
    let s2 = s.clone();
    let producers = thread::spawn(move || {
        let tasks: Vec<BoxFut<usize>> = (0..MPMC_SIDES)
            .map(|p| {
                let s = s2.clone();
                Box::pin(async move {
                    for i in 0..MPMC_PER {
                        s.send(p * MPMC_PER + i).await;
                    }
                    0usize
                }) as BoxFut<usize>
            })
            .collect();
        block_on_all(tasks);
    });
    let consumers: Vec<BoxFut<usize>> = (0..MPMC_SIDES)
        .map(|_| {
            let s = s.clone();
            Box::pin(async move {
                let mut sum = 0usize;
                for _ in 0..MPMC_PER {
                    sum += s.recv().await;
                }
                sum
            }) as BoxFut<usize>
        })
        .collect();
    let sums = block_on_all(consumers);
    producers.join().unwrap();
    assert_eq!(
        sums.iter().sum::<usize>(),
        (0..MPMC_SIDES * MPMC_PER).sum::<usize>()
    );
}

#[test]
fn mixed_async_and_blocking_sides() {
    // Blocking producers, async consumers, one structure: the two wait
    // modes must interoperate node-for-node.
    use synq::SyncChannel;
    let q = AsyncSyncQueue::new();
    let mut producers = Vec::new();
    for p in 0..MPMC_SIDES {
        let q = q.clone();
        producers.push(thread::spawn(move || {
            for i in 0..MPMC_PER {
                q.inner().put(p * MPMC_PER + i);
            }
        }));
    }
    let consumers: Vec<BoxFut<usize>> = (0..MPMC_SIDES)
        .map(|_| {
            let q = q.clone();
            Box::pin(async move {
                let mut sum = 0usize;
                for _ in 0..MPMC_PER {
                    sum += q.recv().await;
                }
                sum
            }) as BoxFut<usize>
        })
        .collect();
    let sums = block_on_all(consumers);
    for t in producers {
        t.join().unwrap();
    }
    assert_eq!(
        sums.iter().sum::<usize>(),
        (0..MPMC_SIDES * MPMC_PER).sum::<usize>()
    );
}
