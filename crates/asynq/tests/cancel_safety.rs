//! Cancel-safety: dropping a transfer future at *every* protocol state
//! must drop each in-flight item exactly once — never zero times (leak),
//! never twice (double free).
//!
//! The states, in the wait-node protocol's terms:
//!
//! * **unstarted** — future never polled; no node exists yet.
//! * **waiting**  — node published, no counterpart yet; dropping must win
//!   the cancel CAS and retract the reservation.
//! * **claimed/matched** — a fulfiller got there first (its claim can be
//!   mid-flight when the drop runs); dropping must concede and still
//!   settle the deposited item exactly once.
//! * **completed** — the future resolved; dropping it is inert.
//!
//! Every test is a drop-count conservation check on an instrumented
//! payload. These tests run under miri in CI (they use short bounded
//! iterations and no timer thread).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;
use synq::TimedSyncChannel;
use synq_async::{AsyncSyncQueue, AsyncSyncStack};

/// Payload whose drops are counted; cloning the counter is not counted.
struct Payload(Arc<AtomicUsize>);

impl Drop for Payload {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Payload")
    }
}

fn payload() -> (Payload, Arc<AtomicUsize>) {
    let c = Arc::new(AtomicUsize::new(0));
    (Payload(Arc::clone(&c)), c)
}

fn noop_waker() -> Waker {
    struct W;
    impl Wake for W {
        fn wake(self: Arc<Self>) {}
    }
    Waker::from(Arc::new(W))
}

/// Polls `fut` exactly once.
fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    Pin::new(fut).poll(&mut cx)
}

/// Runs epoch collection cycles until deferred releases (and with them
/// `drop_pending_item`) have executed.
fn flush_epochs() {
    for _ in 0..16 {
        synq_reclaim::pin().flush();
    }
}

// ---------------------------------------------------------------- unstarted

#[test]
fn queue_drop_unpolled_send_drops_item_once() {
    let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
    let (p, drops) = payload();
    drop(q.send(p)); // never polled: the item never left the future
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    assert!(q.try_recv().is_none(), "no node may have been published");
}

#[test]
fn stack_drop_unpolled_send_drops_item_once() {
    let s: AsyncSyncStack<Payload> = AsyncSyncStack::new();
    let (p, drops) = payload();
    drop(s.send(p));
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    assert!(s.try_recv().is_none());
}

// ------------------------------------------------------------------ waiting

#[test]
fn queue_drop_waiting_send_drops_item_once() {
    let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
    let (p, drops) = payload();
    let mut fut = q.send(p);
    assert!(poll_once(&mut fut).is_pending(), "no consumer: must wait");
    drop(fut); // cancel CAS wins; the unsent item is settled on the spot
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    assert!(q.try_recv().is_none(), "reservation must be retracted");
    drop(q);
    flush_epochs();
    assert_eq!(drops.load(Ordering::SeqCst), 1, "no double drop later");
}

#[test]
fn stack_drop_waiting_send_drops_item_once() {
    let s: AsyncSyncStack<Payload> = AsyncSyncStack::new();
    let (p, drops) = payload();
    let mut fut = s.send(p);
    assert!(poll_once(&mut fut).is_pending());
    drop(fut);
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    assert!(s.try_recv().is_none());
    drop(s);
    flush_epochs();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn queue_drop_waiting_recv_retracts_reservation() {
    let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
    let mut fut = q.recv();
    assert!(poll_once(&mut fut).is_pending());
    drop(fut);
    let (p, drops) = payload();
    assert!(
        q.try_send(p).is_err(),
        "the dropped recv's reservation must be gone"
    );
    assert_eq!(drops.load(Ordering::SeqCst), 1, "rejected item came back");
}

#[test]
fn stack_drop_waiting_recv_retracts_reservation() {
    let s: AsyncSyncStack<Payload> = AsyncSyncStack::new();
    let mut fut = s.recv();
    assert!(poll_once(&mut fut).is_pending());
    drop(fut);
    let (p, drops) = payload();
    assert!(s.try_send(p).is_err());
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

// --------------------------------------------------------- claimed/matched

#[test]
fn queue_drop_matched_recv_consumes_deposited_item_once() {
    let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
    let mut fut = q.recv();
    assert!(poll_once(&mut fut).is_pending());
    // A producer fulfills the pending reservation...
    let (p, drops) = payload();
    q.try_send(p).expect("reservation is waiting");
    // ...and the consumer is dropped without ever being re-polled: the
    // deposited item must still be dropped exactly once (via the node's
    // final, epoch-deferred release).
    drop(fut);
    drop(q);
    flush_epochs();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn stack_drop_matched_recv_consumes_deposited_item_once() {
    let s: AsyncSyncStack<Payload> = AsyncSyncStack::new();
    let mut fut = s.recv();
    assert!(poll_once(&mut fut).is_pending());
    let (p, drops) = payload();
    s.try_send(p).expect("reservation is waiting");
    drop(fut);
    drop(s);
    flush_epochs();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

// ---------------------------------------------------------------- completed

#[test]
fn queue_completed_recv_then_drop_is_single_drop() {
    let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
    let mut fut = q.recv();
    assert!(poll_once(&mut fut).is_pending());
    let (p, drops) = payload();
    q.try_send(p).expect("reservation is waiting");
    match poll_once(&mut fut) {
        Poll::Ready(received) => drop(received),
        Poll::Pending => panic!("matched recv must resolve"),
    }
    drop(fut); // inert: the item already left through Ready
    drop(q);
    flush_epochs();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn stack_completed_send_then_drop_is_single_drop() {
    let s: AsyncSyncStack<Payload> = AsyncSyncStack::new();
    let mut recv = s.recv();
    assert!(poll_once(&mut recv).is_pending());
    let (p, drops) = payload();
    let mut send = s.send(p);
    assert!(
        poll_once(&mut send).is_ready(),
        "waiting consumer: immediate"
    );
    drop(send);
    match poll_once(&mut recv) {
        Poll::Ready(received) => drop(received),
        Poll::Pending => panic!("fulfilled recv must resolve"),
    }
    drop(recv);
    drop(s);
    flush_epochs();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

// ------------------------------------------------- racing drop vs. fulfill

/// The probabilistic sweep over the claim window: a consumer future is
/// dropped *concurrently* with a producer's fulfillment, so the cancel CAS
/// races the claim CAS — sometimes hitting the `CLAIMED` (mid-deposit)
/// state. Whatever interleaving occurs, the payload is dropped exactly
/// once per round.
#[test]
fn queue_racing_drop_vs_fulfill_conserves_items() {
    let rounds = if cfg!(miri) { 8 } else { 400 };
    for _ in 0..rounds {
        let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let mut fut = q.recv();
        assert!(poll_once(&mut fut).is_pending());
        let q2 = q.clone();
        let d2 = Arc::clone(&drops);
        let producer = std::thread::spawn(move || {
            // Timed: if the consumer retracts first, hand the item back
            // (and drop it on return) instead of waiting forever.
            let _ = q2
                .inner()
                .offer_timeout(Payload(d2), Duration::from_millis(10));
        });
        drop(fut);
        producer.join().unwrap();
        drop(q);
        flush_epochs();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}

#[test]
fn stack_racing_drop_vs_fulfill_conserves_items() {
    let rounds = if cfg!(miri) { 8 } else { 400 };
    for _ in 0..rounds {
        let s: AsyncSyncStack<Payload> = AsyncSyncStack::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let mut fut = s.recv();
        assert!(poll_once(&mut fut).is_pending());
        let s2 = s.clone();
        let d2 = Arc::clone(&drops);
        let producer = std::thread::spawn(move || {
            let _ = s2
                .inner()
                .offer_timeout(Payload(d2), Duration::from_millis(10));
        });
        drop(fut);
        producer.join().unwrap();
        drop(s);
        flush_epochs();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}

/// Symmetric race: a *send* future is dropped while a consumer thread
/// tries to claim its published item.
#[test]
fn queue_racing_drop_send_vs_take_conserves_items() {
    let rounds = if cfg!(miri) { 8 } else { 400 };
    for _ in 0..rounds {
        let q: AsyncSyncQueue<Payload> = AsyncSyncQueue::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let p = Payload(Arc::clone(&drops));
        let mut fut = q.send(p);
        assert!(poll_once(&mut fut).is_pending());
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            // Drop any claimed item immediately: it counts as its one drop.
            let _ = q2.inner().poll_timeout(Duration::from_millis(10));
        });
        drop(fut);
        consumer.join().unwrap();
        drop(q);
        flush_epochs();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
