//! Zero-overhead-when-off instrumentation for the synq workspace.
//!
//! The paper's evaluation (§5) explains *why* the dual structures win —
//! fewer CAS retries, local spinning instead of parking, elimination hits —
//! but throughput numbers alone cannot confirm those mechanisms. This crate
//! makes the internal events countable:
//!
//! - [`probe!`] increments a named [`Probe`] counter in a cache-padded,
//!   per-thread-sharded table ([`record`]).
//! - [`trace!`] appends a `(thread, kind, timestamp, payload)` event to a
//!   fixed-capacity lock-free ring ([`trace_event`], [`trace_events`]) for
//!   post-mortem reconstruction of handoff races.
//! - [`StatsSnapshot`] sums the shards into one vector; two snapshots
//!   subtract into a per-interval delta that the bench crate embeds in its
//!   JSON reports.
//!
//! # The `stats` feature
//!
//! Everything above is gated on `--features stats`. With the feature off
//! (the default) [`record`] and [`trace_event`] are **`const fn`s with empty
//! bodies**: a `const fn` cannot touch statics, atomics, or TLS, so the
//! compiler proves at type-check time that every probe site is effect-free,
//! and `#[inline(always)]` guarantees no residual call instruction. No
//! counter table or ring buffer is even declared ([`TABLE_BYTES`] is 0).
//! `tests/probe_noop.rs` pins this down by evaluating both functions in a
//! `const` block — the test *fails to compile* if a runtime effect sneaks
//! in.
//!
//! Instrumented crates depend on `synq-obs` unconditionally and forward a
//! `stats` feature to it; because `probe!` expands to a call into *this*
//! crate, the single source of truth for on/off is `synq-obs/stats` and no
//! consumer needs `#[cfg]` at the call sites.
//!
//! # Example
//!
//! ```
//! use synq_obs::{probe, Probe, StatsSnapshot};
//!
//! let before = StatsSnapshot::take();
//! probe!(WaitSpins, 32);
//! probe!(WaitParks);
//! let delta = StatsSnapshot::take().delta(&before);
//! if synq_obs::ENABLED {
//!     assert_eq!(delta.get(Probe::WaitSpins), 32);
//!     assert_eq!(delta.get(Probe::WaitParks), 1);
//! } else {
//!     assert_eq!(delta.get(Probe::WaitSpins), 0);
//! }
//! ```

#![warn(missing_docs)]

/// Defines [`Probe`] together with its census (`COUNT`, `ALL`) and dotted
/// export names, keeping the three in lockstep.
macro_rules! probes {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// Every countable event in the workspace, one variant per probe
        /// site family. The discriminant indexes the counter table; the
        /// dotted [`Probe::name`] is the stable key used in bench JSON.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Probe {
            $($(#[$doc])* $variant,)+
        }

        impl Probe {
            /// Number of probes (the counter-table width).
            pub const COUNT: usize = [$(Probe::$variant,)+].len();

            /// All probes in discriminant order.
            pub const ALL: [Probe; Self::COUNT] = [$(Probe::$variant,)+];

            /// Stable dotted name, e.g. `"queue.append_cas_fail"`.
            pub const fn name(self) -> &'static str {
                match self {
                    $(Probe::$variant => $name,)+
                }
            }
        }
    };
}

probes! {
    // Dual queue (paper §4.1 / Listing 4): the two lock-free install points
    // and their failure (retry) edges, plus head swings.
    /// Successful CAS appending a node to the dual queue's tail.
    QueueAppendCas => "queue.append_cas",
    /// Failed append CAS (another thread won the tail; retry).
    QueueAppendCasFail => "queue.append_cas_fail",
    /// Successful claim of a reservation at the dual queue's head.
    QueueClaimCas => "queue.claim_cas",
    /// Failed claim (reservation already taken or cancelled; retry).
    QueueClaimCasFail => "queue.claim_cas_fail",
    /// Head-pointer advances (dequeues plus cancellation cleanup).
    QueueHeadAdvances => "queue.head_advances",

    // Dual stack (paper §4.2 / Listing 5).
    /// Successful CAS pushing a waiting node onto the dual stack.
    StackPushCas => "stack.push_cas",
    /// Failed push CAS (lost the head race; retry).
    StackPushCasFail => "stack.push_cas_fail",
    /// Successful fulfillment CAS matching the top waiting node.
    StackMatchCas => "stack.match_cas",
    /// Failed fulfillment CAS (node vanished or was taken; retry).
    StackMatchCasFail => "stack.match_cas_fail",
    /// Times a thread helped complete someone else's in-flight match.
    StackHelped => "stack.helped",

    // WaitSlot protocol (DESIGN §4.7): how waiting time is actually spent.
    /// Spin-loop iterations executed across all waits.
    WaitSpins => "wait.spins",
    /// Times a waiter gave up spinning and parked its thread.
    WaitParks => "wait.parks",
    /// Waits fulfilled during the spin phase (no park needed).
    WaitDirectHandoffs => "wait.direct_handoffs",
    /// Waits fulfilled only after at least one park.
    WaitParkedHandoffs => "wait.parked_handoffs",
    /// Waits that expired: deadline passed or a spin-only budget ran out.
    WaitTimeouts => "wait.timeouts",
    /// Waits ended by a fired `CancelToken`.
    WaitCancels => "wait.cancels",
    /// Cancel attempts that lost the race to a concurrent fulfill.
    WaitCancelRaceLost => "wait.cancel_race_lost",

    // Node cache (DESIGN §4.6).
    /// Node allocations served from the per-structure free list.
    NodeCacheHits => "node_cache.hits",
    /// Node allocations that fell through to the global allocator.
    NodeCacheMisses => "node_cache.misses",

    // Epoch reclamation (synq-reclaim).
    /// Epoch pins (one per protected critical section entry).
    EpochPins => "epoch.pins",
    /// Pins satisfied by the fence-free lazy re-pin fast path.
    EpochFastRepins => "epoch.fast_repins",
    /// Garbage nodes deferred for later reclamation.
    EpochDefers => "epoch.defers",
    /// Bag-collection passes executed.
    EpochCollects => "epoch.collects",
    /// Successful global-epoch advances.
    EpochAdvances => "epoch.advances",

    // Elimination arena + exchanger (paper §4.3).
    /// Arena visits that eliminated against a waiting partner.
    ElimHits => "elim.hits",
    /// Arena visits that found no partner and fell back.
    ElimMisses => "elim.misses",
    /// Completed exchanger swaps (both directions counted once).
    ExchangerSwaps => "exchanger.swaps",
    /// Exchanger waits that timed out without a partner.
    ExchangerTimeouts => "exchanger.timeouts",

    // Baselines (paper §3): coarse events for the classic algorithms.
    /// Semaphore acquires that took a permit.
    SemAcquires => "sem.acquires",
    /// Semaphore acquires that had to block on the condvar.
    SemContended => "sem.contended",
    /// Ticket-lock acquisitions.
    TicketAcquires => "ticket.acquires",
    /// Ticket-lock acquisitions that found the lock held and queued.
    TicketQueued => "ticket.queued",
    /// Completed transfers through the Hanson three-semaphore queue.
    HansonTransfers => "hanson.transfers",
    /// Completed transfers through the Java 5 SynchronousQueue port.
    Java5Transfers => "java5.transfers",
    /// Completed transfers through the naive monitor queue.
    NaiveTransfers => "naive.transfers",

    // Async front-end (synq-async).
    /// Future polls executed by the async front-end.
    AsyncPolls => "async.polls",
    /// Polls that returned `Pending` (registered a waker and suspended).
    AsyncPendings => "async.pendings",

    // Striped lanes (DESIGN §4.10): where the lane-picker sent each transfer.
    /// Transfers resolved on the caller's affine lane (fast path).
    StripedLaneHits => "striped.lane_hits",
    /// Transfers resolved on a sibling lane found by the fail-fast scan.
    StripedScans => "striped.scans",
    /// Lane-picker diffractions: affine offset rotated after sustained
    /// CAS-failure feedback.
    StripedDiffractions => "striped.diffractions",
    /// Published waits retracted because a counterpart appeared on a
    /// sibling lane during the post-publish rescan.
    StripedRetracts => "striped.retracts",

    // Bounded ring-buffer fast path (DESIGN §4.11): SCQ-style
    // cycle-versioned slots in front of the TransferQueue rendezvous.
    /// Items published into the bounded ring (buffered fast-path puts).
    RingPushItems => "ring.push_items",
    /// Items consumed from the bounded ring (buffered fast-path polls).
    RingPopItems => "ring.pop_items",
    /// Successful tail-advancing CASes — one per push *or per push batch*,
    /// so `push_items / tail_updates` is the producer-side amortization.
    RingTailUpdates => "ring.tail_updates",
    /// Successful head-advancing CASes — one per pop *or per pop batch*.
    RingHeadUpdates => "ring.head_updates",
    /// Failed head/tail CASes (another thread won the slot race; retry).
    RingCasFails => "ring.cas_fails",
    /// Producers that found the ring full and registered as space-waiters
    /// (the ring-full → rendezvous-machinery fallback edge).
    RingFullWaits => "ring.full_waits",
    /// Consumers that found the ring empty (and no linked transfers) and
    /// registered as item-waiters.
    RingEmptyWaits => "ring.empty_waits",
    /// Nodes handed to a reclaimer backend (`Shield::defer_retire`), across
    /// every backend — the inflow side of the garbage ledger.
    ReclaimRetired => "reclaim.retired",
    /// Retire closures actually executed (node freed or recycled) — the
    /// outflow side; `retired - freed` is the live garbage population.
    ReclaimFreed => "reclaim.freed",
    /// Hazard-pointer scans: one per pass over the slot registry when a
    /// retire list reaches its threshold (or an explicit `collect`).
    ReclaimHazardScans => "reclaim.hazard_scans",
    /// Retired nodes kept across a hazard scan because an active slot still
    /// protected them — retire-list length pressure under load.
    ReclaimHazardHeld => "reclaim.hazard_held",
    /// Scans (hazard) that freed nothing at all: every candidate was pinned
    /// by a slot. A growing count flags a stalled or wedged reader.
    ReclaimStalls => "reclaim.stalls",

    // Flat-combining rendezvous (DESIGN §4.13): one combiner thread sweeps
    // the publication list and batch-pairs putters with takers.
    /// Combiner sweeps: full passes over the publication list under the
    /// combiner lock. `requests / sweeps` is the batch size the assert leg
    /// checks under oversubscription.
    CombinerSweeps => "combiner.sweeps",
    /// Pending requests claimed during sweeps (paired *or* handed back).
    CombinerRequests => "combiner.requests",
    /// Requests resolved while their owner waited — the delegation path: a
    /// *different* thread's sweep completed the handoff.
    CombinerDelegated => "combiner.delegated",
    /// Requests resolved by their owner's own lock acquisition (the owner
    /// was the combiner and served itself within its sweep).
    CombinerSelfService => "combiner.self_service",
    /// Publication records newly allocated and linked into the list.
    CombinerRecordEnrolls => "combiner.record_enrolls",
    /// Publications that reused the caller's cached per-thread record (no
    /// allocation, no list CAS — the steady-state fast path).
    CombinerRecordRecycles => "combiner.record_recycles",
    /// Records aged out (unlinked to the graveyard) after sitting quiet for
    /// the structure's age limit of consecutive sweeps.
    CombinerRecordAged => "combiner.record_aged",
    /// Combiner-lock CAS attempts that found the lock held (the loser
    /// published and went to wait; the holder's release re-check covers it).
    CombinerLockFails => "combiner.lock_fails",

    // Parker substrate (DESIGN §4.15): how permits actually move between
    // threads — banked fast paths vs real descheduling syscalls.
    /// Parks that consumed an already-banked permit without sleeping (the
    /// no-syscall fast path on both the futex and condvar backends).
    ParkFastPaths => "park.fast_paths",
    /// Futex/condvar sleep attempts: one per `FUTEX_WAIT` syscall (Linux)
    /// or condvar wait (fallback), including spurious-wake re-sleeps.
    ParkFutexWaits => "park.futex_waits",
    /// Wake syscalls issued: `unpark` found a sleeping (PARKED) peer and
    /// paid one `FUTEX_WAKE`/`notify_one`.
    ParkFutexWakes => "park.futex_wakes",
    /// Unparks that banked the permit without a syscall (peer not asleep:
    /// state was EMPTY or NOTIFIED).
    ParkWakeSkips => "park.wake_skips",
    /// Timed parks that expired without a permit (the timeout-retract
    /// path: `swap(EMPTY)` observed PARKED).
    ParkTimeouts => "park.timeouts",

    // Dispatch-server scenario (the `server` bench bin): async connections
    // dispatching jobs into the executor pool through a rendezvous channel.
    /// Requests issued by server-scenario connections (every dispatch
    /// attempt across the steady, burst, storm, and wave phases).
    ServerRequests => "server.requests",
    /// Dispatches abandoned because the patience deadline lapsed before a
    /// worker took the job (the timeout-storm signal).
    ServerTimeouts => "server.timeouts",
    /// Dispatches cancelled by a cancellation wave: the in-flight send was
    /// dropped before any worker took the job.
    ServerCancels => "server.cancels",
    /// Burst-phase `try_send`s that found no worker parked in `poll` and
    /// dropped the request instead of waiting.
    ServerBurstDrops => "server.burst_drops",
}

impl Probe {
    /// Inverse of the discriminant: `Probe::from_index(p as usize) == Some(p)`.
    pub fn from_index(index: usize) -> Option<Probe> {
        Probe::ALL.get(index).copied()
    }
}

/// Records `n` occurrences of `probe`.
///
/// Prefer the [`probe!`] macro at call sites. With `stats` off this is a
/// `const fn` no-op (see the crate docs for why const-ness is the proof).
#[macro_export]
macro_rules! probe {
    ($probe:ident) => {
        $crate::record($crate::Probe::$probe, 1)
    };
    ($probe:ident, $n:expr) => {
        $crate::record($crate::Probe::$probe, $n as u64)
    };
}

/// Appends an event to the trace ring.
///
/// `trace!(Kind)` records a zero payload; `trace!(Kind, word)` records an
/// arbitrary `u64` (a pointer bit-pattern, a ticket, a state value). With
/// `stats` off this is a `const fn` no-op.
#[macro_export]
macro_rules! trace {
    ($probe:ident) => {
        $crate::trace_event($crate::Probe::$probe, 0)
    };
    ($probe:ident, $payload:expr) => {
        $crate::trace_event($crate::Probe::$probe, $payload as u64)
    };
}

/// One decoded entry from the trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global ticket: total order of ring writes (monotone, gap-free among
    /// surviving events).
    pub ticket: u64,
    /// Small dense id of the recording thread (the per-process dense
    /// counter that also picks the counter shard).
    pub thread: u64,
    /// What happened.
    pub kind: Probe,
    /// Nanoseconds since the first instrumented event in the process.
    pub time_ns: u64,
    /// Free-form payload word supplied at the trace site.
    pub payload: u64,
}

/// An aggregated view of every probe counter at one instant.
///
/// Counters are monotone; subtract two snapshots with
/// [`StatsSnapshot::delta`] to attribute events to an interval (the bench
/// harness does this per algorithm run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    counts: [u64; Probe::COUNT],
}

impl StatsSnapshot {
    /// Sums all counter shards. All zeros when `stats` is off.
    pub fn take() -> StatsSnapshot {
        StatsSnapshot {
            counts: imp::collect_counts(),
        }
    }

    /// The count recorded for `probe`.
    pub fn get(&self, probe: Probe) -> u64 {
        self.counts[probe as usize]
    }

    /// Per-interval view: `self - earlier`, saturating at zero (counters
    /// are monotone, so saturation only masks a mismatched pair).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut counts = [0u64; Probe::COUNT];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        StatsSnapshot { counts }
    }

    /// `(name, count)` pairs for every probe with a nonzero count, in
    /// declaration order — the shape exported into bench JSON.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        Probe::ALL
            .iter()
            .filter(|&&p| self.get(p) != 0)
            .map(|&p| (p.name(), self.get(p)))
            .collect()
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

pub use imp::{record, reset, trace_event, trace_events, ENABLED, RING_CAP, TABLE_BYTES};

#[cfg(feature = "stats")]
pub use imp::thread_id;

#[cfg(feature = "stats")]
mod imp {
    //! The real implementation: sharded counter table + seqlock ring.

    use super::Probe;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Instrumentation is compiled in.
    pub const ENABLED: bool = true;

    /// Counter shards. More shards than typical bench thread counts would
    /// waste cache; fewer would put hot counters from different threads on
    /// one line. Threads hash to shards by dense id, so up to 16 threads
    /// never collide.
    const SHARDS: usize = 16;

    /// One shard: a full row of counters, padded so two shards never share
    /// a cache line (128 covers adjacent-line prefetch pairs).
    #[repr(align(128))]
    struct Shard([AtomicU64; Probe::COUNT]);

    impl Shard {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: Shard = {
            const Z: AtomicU64 = AtomicU64::new(0);
            Shard([Z; Probe::COUNT])
        };
    }

    static TABLE: [Shard; SHARDS] = [Shard::ZERO; SHARDS];

    /// Bytes of static counter storage compiled into the binary.
    pub const TABLE_BYTES: usize = std::mem::size_of::<[Shard; SHARDS]>();

    static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

    std::thread_local! {
        static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    }

    /// Small dense id of the calling thread, assigned on first
    /// instrumented event (`std::thread::ThreadId` has no stable integer
    /// accessor). Used for both shard selection and trace attribution.
    pub fn thread_id() -> u64 {
        THREAD_ID.with(|t| *t)
    }

    /// Records `n` occurrences of `probe` in the calling thread's shard.
    ///
    /// Relaxed is enough: counters are only read by whole-table snapshot,
    /// never used for synchronization.
    #[inline(always)]
    pub fn record(probe: Probe, n: u64) {
        let shard = &TABLE[(thread_id() % SHARDS as u64) as usize];
        shard.0[probe as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Sums shards into one row. Concurrent increments may or may not be
    /// included — snapshots taken around a quiesced interval are exact.
    pub(super) fn collect_counts() -> [u64; Probe::COUNT] {
        let mut counts = [0u64; Probe::COUNT];
        for shard in &TABLE {
            for (slot, counter) in counts.iter_mut().zip(&shard.0) {
                *slot += counter.load(Ordering::Relaxed);
            }
        }
        counts
    }

    /// Zeroes every counter. Test/bench convenience; racing increments may
    /// survive, so prefer snapshot deltas for measurement.
    pub fn reset() {
        for shard in &TABLE {
            for counter in &shard.0 {
                counter.store(0, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event ring tracer.
    //
    // A fixed array of slots, claimed by a global fetch_add ticket and
    // guarded by a per-slot sequence word in the seqlock style:
    //
    //   writer(t): seq.store(2t+1); fields.store(..); seq.store(2t+2)
    //   reader:    s1 = seq;  fields.load(..);  s2 = seq;
    //              valid iff s1 == s2 and s1 is even and nonzero
    //
    // An odd or changed sequence means a writer was mid-flight (its ticket
    // lapped the reader); the reader simply drops that slot. Fields are
    // relaxed atomics, not raw memory, so an interleaved read yields a
    // discarded stale value — never UB — and the scheme stays Miri-clean.
    // ------------------------------------------------------------------

    /// Trace ring capacity in events; older events are overwritten.
    pub const RING_CAP: usize = 1024;

    struct RingSlot {
        seq: AtomicU64,
        thread: AtomicU64,
        kind: AtomicU64,
        time_ns: AtomicU64,
        payload: AtomicU64,
    }

    impl RingSlot {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const EMPTY: RingSlot = RingSlot {
            seq: AtomicU64::new(0),
            thread: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            time_ns: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        };
    }

    static RING: [RingSlot; RING_CAP] = [RingSlot::EMPTY; RING_CAP];
    static RING_TICKET: AtomicU64 = AtomicU64::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Appends one event to the trace ring. Lock-free: one `fetch_add` to
    /// claim a slot, then plain relaxed stores published by the sequence
    /// word.
    #[inline(always)]
    pub fn trace_event(kind: Probe, payload: u64) {
        let ticket = RING_TICKET.fetch_add(1, Ordering::Relaxed);
        let slot = &RING[(ticket % RING_CAP as u64) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.thread.store(thread_id(), Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.time_ns.store(now_ns(), Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Snapshots the ring: every fully-written, un-lapped event in ticket
    /// (write) order. Events overwritten or mid-write during the scan are
    /// omitted.
    pub fn trace_events() -> Vec<super::TraceEvent> {
        let mut events = Vec::with_capacity(RING_CAP);
        for slot in &RING {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or writer mid-flight
            }
            let thread = slot.thread.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let time_ns = slot.time_ns.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // a writer lapped us mid-read; fields are torn
            }
            let Some(kind) = Probe::from_index(kind as usize) else {
                continue;
            };
            events.push(super::TraceEvent {
                ticket: (s1 - 2) / 2,
                thread,
                kind,
                time_ns,
                payload,
            });
        }
        events.sort_by_key(|e| e.ticket);
        events
    }
}

#[cfg(not(feature = "stats"))]
mod imp {
    //! The disabled implementation: every recording entry point is a
    //! `const fn` with an empty body. Const-ness is load-bearing — a
    //! `const fn` cannot read or write statics, atomics, or TLS, so the
    //! compiler itself verifies these are pure no-ops (exercised by
    //! `tests/probe_noop.rs`), and `#[inline(always)]` leaves no call.

    use super::Probe;

    /// Instrumentation is compiled out.
    pub const ENABLED: bool = false;

    /// No counter table exists in this configuration.
    pub const TABLE_BYTES: usize = 0;

    /// Trace ring capacity the `stats` build would have (kept equal so
    /// code may size buffers against it unconditionally).
    pub const RING_CAP: usize = 1024;

    /// No-op. See the module docs: const-ness proves effect-freedom.
    #[inline(always)]
    pub const fn record(_probe: Probe, _n: u64) {}

    /// No-op. See the module docs: const-ness proves effect-freedom.
    #[inline(always)]
    pub const fn trace_event(_kind: Probe, _payload: u64) {}

    /// No-op; there are no counters to clear.
    #[inline(always)]
    pub fn reset() {}

    pub(super) fn collect_counts() -> [u64; Probe::COUNT] {
        [0; Probe::COUNT]
    }

    /// Always empty; there is no ring.
    pub fn trace_events() -> Vec<super::TraceEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<_> = Probe::ALL.iter().map(|p| p.name()).collect();
        assert!(names.iter().all(|n| n.contains('.')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Probe::COUNT);
    }

    #[test]
    fn from_index_roundtrips() {
        for (i, &p) in Probe::ALL.iter().enumerate() {
            assert_eq!(p as usize, i);
            assert_eq!(Probe::from_index(i), Some(p));
        }
        assert_eq!(Probe::from_index(Probe::COUNT), None);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let mut a = StatsSnapshot {
            counts: [0; Probe::COUNT],
        };
        let mut b = a.clone();
        a.counts[0] = 7;
        b.counts[0] = 10;
        b.counts[1] = 3;
        let d = b.delta(&a);
        assert_eq!(d.counts[0], 3);
        assert_eq!(d.counts[1], 3);
        // Mismatched order saturates rather than wrapping.
        assert_eq!(a.delta(&b).counts[0], 0);
        assert_eq!(
            d.nonzero(),
            vec![(Probe::ALL[0].name(), 3), (Probe::ALL[1].name(), 3)]
        );
        assert!(!d.is_zero());
    }
}
