//! Proof that the stats-off build carries zero probe overhead.
//!
//! The "asm test" here is stronger than inspecting assembly: both recording
//! entry points are evaluated in `const` items. Rust's const evaluator
//! rejects any read or write of a `static`, atomic, or thread-local, so
//! this file *fails to compile* if `record`/`trace_event` ever gain a
//! runtime effect in the default configuration. Combined with
//! `#[inline(always)]`, a provably effect-free empty body leaves no
//! instructions at probe sites.

#![cfg(not(feature = "stats"))]

use synq_obs::{probe, trace, Probe, StatsSnapshot};

// Compile-time proof: no-ops are const-evaluable, hence effect-free.
const _: () = synq_obs::record(Probe::WaitSpins, 1);
const _: () = synq_obs::trace_event(Probe::WaitParks, 0xdead_beef);
const _: () = assert!(!synq_obs::ENABLED);
const _: () = assert!(synq_obs::TABLE_BYTES == 0);

#[test]
fn probes_record_nothing() {
    let before = StatsSnapshot::take();
    for _ in 0..1000 {
        probe!(QueueAppendCasFail);
        probe!(WaitSpins, 64);
        trace!(WaitParks, 7);
    }
    let after = StatsSnapshot::take();
    assert!(before.is_zero());
    assert!(after.is_zero());
    assert!(after.delta(&before).is_zero());
    assert!(after.nonzero().is_empty());
}

#[test]
fn trace_ring_is_absent() {
    trace!(ElimHits, 42);
    assert!(synq_obs::trace_events().is_empty());
}
