//! Behavioral tests for the instrumented (`--features stats`) build:
//! shard aggregation under concurrency and ring-tracer wraparound/order.
//!
//! Counters and the ring are process-global, so every test here uses its
//! own disjoint set of [`Probe`]s and measures with snapshot deltas; the
//! ring tests additionally serialize behind a lock because wraparound
//! assertions need exclusive ownership of the ticket stream.

#![cfg(feature = "stats")]

use std::sync::{Mutex, OnceLock};
use synq_obs::{probe, trace, Probe, StatsSnapshot, RING_CAP};

/// Serializes tests that need the trace ring to themselves.
fn ring_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn enabled_reports_table() {
    const { assert!(synq_obs::ENABLED) };
    const { assert!(synq_obs::TABLE_BYTES > 0) };
}

#[test]
fn single_thread_counts_exact() {
    let before = StatsSnapshot::take();
    probe!(HansonTransfers);
    probe!(HansonTransfers, 9);
    let delta = StatsSnapshot::take().delta(&before);
    assert_eq!(delta.get(Probe::HansonTransfers), 10);
    assert!(delta
        .nonzero()
        .contains(&(Probe::HansonTransfers.name(), 10)));
}

/// The tentpole invariant: the snapshot total equals the sum of per-thread
/// increments, regardless of how threads landed on shards. Thread counts
/// deliberately exceed the shard count so multiple threads share shards.
#[test]
fn concurrent_shard_aggregation_sums() {
    // Deterministic sweep plus randomized schedules via proptest below;
    // this one stresses more threads than proptest can afford per case.
    let before = StatsSnapshot::take();
    let threads = 24;
    let per_thread: u64 = 10_000;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    probe!(NaiveTransfers);
                }
            });
        }
    });
    let delta = StatsSnapshot::take().delta(&before);
    assert_eq!(delta.get(Probe::NaiveTransfers), threads * per_thread);
}

mod shard_aggregation {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Randomized thread/increment schedules: the snapshot delta must
        /// equal the sum of per-thread increments for every shard layout.
        #[test]
        fn proptest_shard_aggregation(
            increment_counts in proptest::collection::vec(1u64..500, 1..8),
        ) {
            let before = StatsSnapshot::take();
            std::thread::scope(|s| {
                for &n in &increment_counts {
                    s.spawn(move || {
                        for _ in 0..n {
                            probe!(Java5Transfers);
                        }
                    });
                }
            });
            let delta = StatsSnapshot::take().delta(&before);
            prop_assert_eq!(
                delta.get(Probe::Java5Transfers),
                increment_counts.iter().sum::<u64>()
            );
        }
    }
}

#[test]
fn trace_events_ordered_with_payloads() {
    let _guard = ring_lock();
    for i in 0..10u64 {
        trace!(ElimHits, i);
    }
    let events = synq_obs::trace_events();
    let mine: Vec<_> = events
        .iter()
        .filter(|e| e.kind == Probe::ElimHits)
        .collect();
    assert!(
        mine.len() >= 10,
        "expected our 10 events, got {}",
        mine.len()
    );
    let tail = &mine[mine.len() - 10..];
    // Ticket order is write order; payloads rode along intact.
    for pair in tail.windows(2) {
        assert!(pair[0].ticket < pair[1].ticket);
        assert!(pair[0].time_ns <= pair[1].time_ns);
        assert_eq!(pair[0].payload + 1, pair[1].payload);
    }
    // All ten were written by this thread.
    assert!(tail.iter().all(|e| e.thread == tail[0].thread));
}

#[test]
fn trace_ring_wraparound_keeps_newest() {
    let _guard = ring_lock();
    let total = RING_CAP as u64 * 3 + 17;
    for i in 0..total {
        trace!(ExchangerTimeouts, i);
    }
    let events = synq_obs::trace_events();
    let mine: Vec<_> = events
        .iter()
        .filter(|e| e.kind == Probe::ExchangerTimeouts)
        .collect();
    // The ring holds at most RING_CAP events, and what survives is the
    // newest window: the final event must be the last one written, and
    // payloads must be consecutive back from it.
    assert!(!mine.is_empty() && mine.len() <= RING_CAP);
    let last = mine.last().unwrap();
    assert_eq!(last.payload, total - 1);
    for pair in mine.windows(2) {
        assert_eq!(pair[0].payload + 1, pair[1].payload);
        assert!(pair[0].ticket < pair[1].ticket);
    }
}

#[test]
fn concurrent_tracing_yields_consistent_events() {
    let _guard = ring_lock();
    let threads = 8;
    let per_thread = RING_CAP / 2; // force overlap and wraparound
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                for i in 0..per_thread as u64 {
                    trace!(ExchangerSwaps, (t << 32) | i);
                }
            });
        }
    });
    let events = synq_obs::trace_events();
    let mine: Vec<_> = events
        .iter()
        .filter(|e| e.kind == Probe::ExchangerSwaps)
        .collect();
    assert!(!mine.is_empty());
    // No torn slot survives the seqlock check: every event's payload must
    // decode to a (thread-tag, index) pair some thread actually wrote.
    for e in mine {
        let tag = e.payload >> 32;
        let idx = e.payload & 0xffff_ffff;
        assert!(tag < threads as u64, "torn payload tag {tag}");
        assert!(idx < per_thread as u64, "torn payload index {idx}");
    }
}
