//! A miniature request-serving backend — the paper's "real-world"
//! scenario (§4): a cached thread pool whose core is a synchronous queue,
//! "which in turn forms the backbone of many Java-based server
//! applications".
//!
//! Run with `cargo run --example thread_pool_server`.
//!
//! Requests arrive in bursts from several frontend threads. Each request
//! is `offer`ed to the pool's synchronous queue: if a worker is already
//! idle it starts instantly (no buffering latency); otherwise a new worker
//! thread is spawned. Workers that stay idle past the keep-alive period
//! retire, so the pool breathes with the load.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use synq_suite::core::SynchronousQueue;
use synq_suite::executor::{PoolConfig, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        Arc::new(SynchronousQueue::unfair()), // unfair: keeps hot workers hot
        PoolConfig {
            core_pool_size: 0,
            max_pool_size: 64,
            keep_alive: Duration::from_millis(200),
        },
    );
    let served = Arc::new(AtomicUsize::new(0));

    println!("burst 1: 40 quick requests from 4 frontends");
    let start = Instant::now();
    let mut frontends = Vec::new();
    for f in 0..4 {
        let pool = pool.clone();
        let served = Arc::clone(&served);
        frontends.push(thread::spawn(move || {
            for r in 0..10 {
                let served = Arc::clone(&served);
                pool.execute(move || {
                    // "handle" the request
                    std::hint::black_box(f * 100 + r);
                    served.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool accepts while below max_pool_size");
            }
        }));
    }
    for f in frontends {
        f.join().unwrap();
    }
    while served.load(Ordering::Relaxed) < 40 {
        thread::yield_now();
    }
    println!(
        "  served 40 requests in {:?} using {} workers",
        start.elapsed(),
        pool.worker_count()
    );

    println!("idle period: workers retire after the keep-alive lapses");
    let deadline = Instant::now() + Duration::from_secs(10);
    while pool.worker_count() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(20));
    }
    println!("  workers now alive: {}", pool.worker_count());

    println!("burst 2: the pool grows again on demand");
    for _ in 0..5 {
        let served = Arc::clone(&served);
        pool.execute(move || {
            served.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    }
    while served.load(Ordering::Relaxed) < 45 {
        thread::yield_now();
    }
    println!("  served {} total", served.load(Ordering::Relaxed));

    pool.shutdown();
    pool.join();
    println!(
        "shutdown complete; {} tasks executed by the pool",
        pool.completed_tasks()
    );
    assert_eq!(pool.completed_tasks(), 45);
}
