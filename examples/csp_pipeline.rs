//! CSP-style pipeline: synchronous queues as rendezvous channels.
//!
//! Run with `cargo run --example csp_pipeline`.
//!
//! Synchronous queues "constitute the central synchronization primitive of
//! Hoare's CSP" (paper §1): with no buffering, each stage of a pipeline
//! runs in lock-step with its neighbours, giving natural rate-matching and
//! bounded memory by construction. This example builds a three-stage
//! text-processing pipeline (generate → transform → aggregate) where each
//! handoff is a rendezvous, then shows the same topology with a
//! `TransferQueue`, whose *asynchronous* `put` decouples the producer when
//! desired.

use std::sync::Arc;
use std::thread;
use synq_suite::core::SynchronousQueue;
use synq_suite::transfer::TransferQueue;

fn main() {
    // --- Stage topology: gen -> upper -> sink, all synchronous ------------
    let to_transform: Arc<SynchronousQueue<String>> = Arc::new(SynchronousQueue::fair());
    let to_sink: Arc<SynchronousQueue<String>> = Arc::new(SynchronousQueue::fair());

    let generator = {
        let out = Arc::clone(&to_transform);
        thread::spawn(move || {
            for word in ["synchronous", "queues", "shake", "hands", "in", "pairs"] {
                out.put(word.to_string()); // blocks until stage 2 is ready
            }
        })
    };

    let transformer = {
        let input = Arc::clone(&to_transform);
        let out = Arc::clone(&to_sink);
        thread::spawn(move || {
            for _ in 0..6 {
                let word = input.take();
                out.put(word.to_uppercase());
            }
        })
    };

    let sink = thread::spawn({
        let input = Arc::clone(&to_sink);
        move || {
            let mut sentence = Vec::new();
            for _ in 0..6 {
                sentence.push(input.take());
            }
            sentence.join(" ")
        }
    });

    generator.join().unwrap();
    transformer.join().unwrap();
    let sentence = sink.join().unwrap();
    println!("synchronous pipeline produced: {sentence}");
    assert_eq!(sentence, "SYNCHRONOUS QUEUES SHAKE HANDS IN PAIRS");

    // --- Same idea with a TransferQueue: producers may run ahead ----------
    // `put` is asynchronous (buffers), `transfer` is a rendezvous. A
    // producer can stream a batch without waiting, then use `transfer` for
    // the final element as a natural completion barrier.
    let tq: Arc<TransferQueue<u64>> = Arc::new(TransferQueue::new());
    let consumer = {
        let tq = Arc::clone(&tq);
        thread::spawn(move || (0..10).map(|_| tq.take()).sum::<u64>())
    };
    for i in 0..9u64 {
        tq.put(i); // fire-and-forget
    }
    tq.transfer(9); // returns only once the consumer has taken it
    let sum = consumer.join().unwrap();
    println!("transfer queue pipeline summed 0..=9 -> {sum}");
    assert_eq!(sum, 45);
    // Because `transfer` is synchronous and the queue is FIFO, the
    // consumer has necessarily drained everything we sent before it.
    assert!(tq.is_empty());

    println!("pipeline example complete");
}
