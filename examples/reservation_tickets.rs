//! The request/follow-up interface of dual data structures (paper
//! Listing 2 and §2.2).
//!
//! Run with `cargo run -p synq-suite --example reservation_tickets`.
//!
//! A *dual* queue lets a consumer split its dequeue into a linearizing
//! `reserve` and contention-free `followup` polls — unlike the
//! "call-in-a-loop" idiom over a totalized queue, where ordering "is
//! simply a function of which thread happens to retry its dequeue first"
//! and every retry burns memory-interconnect bandwidth.

use std::time::Duration;
use synq_suite::classic::DualQueue;

fn main() {
    let q: DualQueue<&'static str> = DualQueue::new();

    // --- The §2.2 scenario ------------------------------------------------
    // A and B request before any data exists; C and D then enqueue.
    let mut ticket_a = q.dequeue_reserve(); // A calls dequeue
    let mut ticket_b = q.dequeue_reserve(); // B calls dequeue
    assert_eq!(ticket_a.try_followup(), None); // nothing yet — no spinning
    q.enqueue("first"); // C enqueues a 1
    q.enqueue("second"); // D enqueues a 2
    let a_got = ticket_a.try_followup().expect("A fulfilled");
    let b_got = ticket_b.try_followup().expect("B fulfilled");
    println!("A (earlier request) received {a_got:?}; B received {b_got:?}");
    // The dual queue guarantees what intuition expects:
    assert_eq!(a_got, "first");
    assert_eq!(b_got, "second");

    // --- Abort: bounded patience without blocking -------------------------
    let mut impatient = q.dequeue_reserve();
    assert_eq!(impatient.try_followup(), None);
    assert!(impatient.abort(), "no data arrived; reservation withdrawn");
    q.enqueue("later");
    // The aborted reservation is skipped; the value is still available.
    assert_eq!(q.try_dequeue(), Some("later"));
    println!("aborted reservation was skipped cleanly");

    // --- Demand methods: reserve + wait in one call -----------------------
    let ticket = q.dequeue_reserve();
    assert_eq!(
        ticket.wait_timeout(Duration::from_millis(30)),
        None,
        "patience expired"
    );
    q.enqueue("patience pays");
    assert_eq!(q.dequeue(), "patience pays");

    println!("reservation ticket example complete");
}
