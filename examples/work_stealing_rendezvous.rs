//! Elimination and exchange: pairing threads off *away* from the hot spot.
//!
//! Run with `cargo run --example work_stealing_rendezvous`.
//!
//! Two demonstrations of the paper's §5 extension machinery:
//!
//! 1. An [`Exchanger`] lets a pair of threads swap work batches
//!    symmetrically — here, a "hot" worker with a surplus trades half its
//!    backlog for an idle worker's empty batch (the classic
//!    work-rebalancing rendezvous).
//! 2. An [`EliminationSyncStack`] serves a burst of producer/consumer
//!    traffic; under contention some pairs meet in the elimination arena
//!    and never touch the stack head at all.

use std::sync::Arc;
use std::thread;
use synq_suite::core::{SyncChannel, TimedSyncChannel};
use synq_suite::exchanger::{EliminationSyncStack, Exchanger};

fn main() {
    // --- 1. Work rebalancing through an Exchanger -------------------------
    let exchanger: Arc<Exchanger<Vec<u32>>> = Arc::new(Exchanger::new());

    let busy = {
        let x = Arc::clone(&exchanger);
        thread::spawn(move || {
            let backlog: Vec<u32> = (0..100).collect();
            let (keep, give): (Vec<u32>, Vec<u32>) = backlog.into_iter().partition(|v| v % 2 == 0);
            // Swap our surplus for whatever the partner offers (an empty
            // batch, in this case).
            let received = x.exchange(give);
            (keep.len(), received.len())
        })
    };
    let idle = {
        let x = Arc::clone(&exchanger);
        thread::spawn(move || {
            let received = x.exchange(Vec::new());
            received.len()
        })
    };
    let (kept, got_back) = busy.join().unwrap();
    let stolen = idle.join().unwrap();
    println!("busy worker kept {kept}, idle worker took over {stolen} (busy got {got_back} back)");
    assert_eq!(kept, 50);
    assert_eq!(stolen, 50);
    assert_eq!(got_back, 0);

    // --- 2. Elimination-backoff synchronous stack -------------------------
    let stack: Arc<EliminationSyncStack<u64>> = Arc::new(EliminationSyncStack::new(8));
    const THREADS: usize = 4;
    const PER: usize = 5_000;

    let producers: Vec<_> = (0..THREADS)
        .map(|p| {
            let s = Arc::clone(&stack);
            thread::spawn(move || {
                for i in 0..PER {
                    s.put((p * PER + i) as u64);
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..THREADS)
        .map(|_| {
            let s = Arc::clone(&stack);
            thread::spawn(move || (0..PER).map(|_| s.take()).sum::<u64>())
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let expected: u64 = (0..(THREADS * PER) as u64).sum();
    assert_eq!(total, expected);
    println!(
        "elimination stack moved {} items; {} transfers met in the arena",
        THREADS * PER,
        stack.eliminated()
    );
    assert_eq!(stack.poll(), None);

    println!("rendezvous example complete");
}
