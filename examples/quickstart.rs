//! Quickstart: the synchronous queue API in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! A synchronous queue has no internal capacity: every `put` waits for a
//! `take` and vice versa — producers and consumers "shake hands and leave
//! in pairs". This example walks through the core API surface: blocking
//! transfer, non-blocking `offer`/`poll`, timed variants, fair vs. unfair
//! pairing, and cancellation.

use std::sync::Arc;
use std::thread;
use std::time::Duration;
use synq_suite::core::{
    CancelToken, Deadline, SyncChannel, SyncDualQueue, SynchronousQueue, TimedSyncChannel,
    TransferOutcome,
};
use synq_suite::reclaim::Hazard;

fn main() {
    // --- 1. Blocking rendezvous -----------------------------------------
    let q = Arc::new(SynchronousQueue::new()); // unfair (stack) mode, like Java
    let q2 = Arc::clone(&q);
    let consumer = thread::spawn(move || {
        let v: String = q2.take(); // blocks until a producer arrives
        println!("consumer received: {v}");
        v
    });
    q.put("hello, rendezvous".to_string()); // blocks until taken
    assert_eq!(consumer.join().unwrap(), "hello, rendezvous");

    // --- 2. Non-blocking probes ------------------------------------------
    // Nobody is waiting, so both fail immediately and hand the item back.
    assert_eq!(q.poll(), None);
    assert_eq!(
        q.offer("nobody is listening".into()),
        Err("nobody is listening".into())
    );

    // --- 3. Patience (timed offer/poll) ----------------------------------
    let started = std::time::Instant::now();
    assert_eq!(q.poll_timeout(Duration::from_millis(50)), None);
    println!("timed poll gave up after {:?}", started.elapsed());

    // --- 4. Fair mode ------------------------------------------------------
    // Fair queues pair strictly FIFO: the longest-waiting producer goes
    // first. (Unfair/stack mode would pair LIFO — better cache locality.)
    let fair = Arc::new(SynchronousQueue::fair());
    let mut producers = Vec::new();
    for i in 0..3u32 {
        let fq = Arc::clone(&fair);
        producers.push(thread::spawn(move || fq.put(i)));
        // Wait until producer i is enqueued so arrival order is fixed.
        while fair.linked_nodes() < (i + 1) as usize {
            thread::yield_now();
        }
    }
    let order: Vec<u32> = (0..3).map(|_| fair.take()).collect();
    println!("fair mode delivered in arrival order: {order:?}");
    assert_eq!(order, vec![0, 1, 2]);
    for p in producers {
        p.join().unwrap();
    }

    // --- 5. Cancellation ("interrupts") ----------------------------------
    let q3: Arc<SynchronousQueue<u32>> = Arc::new(SynchronousQueue::new());
    let token = CancelToken::new();
    let canceller = token.canceller();
    let q4 = Arc::clone(&q3);
    let waiter = thread::spawn(move || q4.transfer_cancellable(&token));
    thread::sleep(Duration::from_millis(30));
    canceller.cancel(); // asynchronously interrupt the blocked take
    match waiter.join().unwrap() {
        TransferOutcome::Cancelled(None) => println!("blocked take was interrupted cleanly"),
        other => panic!("unexpected outcome: {other:?}"),
    }

    // --- 6. Picking a reclamation backend --------------------------------
    // Every structure takes a memory-reclamation backend as a defaulted
    // type parameter: the plain constructors use epoch reclamation (the
    // fastest common case), while the `_in` constructors accept any
    // `Reclaimer` — here hazard pointers, whose unreclaimed garbage stays
    // bounded even if a thread stalls mid-operation (DESIGN.md §4.12).
    let epoch_q: SyncDualQueue<u32> = SyncDualQueue::new(); // default: Epoch
    let hazard_q: Arc<SyncDualQueue<u32, Hazard>> = Arc::new(SyncDualQueue::new_in());
    assert_eq!(epoch_q.poll(), None);
    let hq = Arc::clone(&hazard_q);
    let consumer = thread::spawn(move || hq.take());
    hazard_q.put(42);
    assert_eq!(consumer.join().unwrap(), 42);
    println!("same rendezvous semantics under the hazard-pointer backend");

    println!("quickstart complete");
}

/// Tiny extension trait so the example reads naturally.
trait TakeCancellable<T: Send> {
    fn transfer_cancellable(&self, token: &CancelToken) -> TransferOutcome<T>;
}

impl<T: Send> TakeCancellable<T> for SynchronousQueue<T> {
    fn transfer_cancellable(&self, token: &CancelToken) -> TransferOutcome<T> {
        use synq_suite::core::Transferer;
        self.transfer(None, Deadline::Never, Some(token))
    }
}
