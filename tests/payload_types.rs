//! Payload-type edge cases: the queues are generic over `T: Send`, so they
//! must handle zero-sized types, large values, heap-owning values and
//! drop-sensitive values identically in every implementation.

use std::sync::Arc;
use std::thread;
use std::time::Duration;
use synq_suite::classic::{DualQueue, DualStack};
use synq_suite::core::{SyncChannel, SyncDualQueue, SyncDualStack, TimedSyncChannel};
use synq_suite::transfer::TransferQueue;

#[test]
fn zero_sized_payloads() {
    let q: Arc<SyncDualQueue<()>> = Arc::new(SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let t = thread::spawn(move || {
        for _ in 0..100 {
            q2.take();
        }
    });
    for _ in 0..100 {
        q.put(());
    }
    t.join().unwrap();

    let s: Arc<SyncDualStack<()>> = Arc::new(SyncDualStack::new());
    let s2 = Arc::clone(&s);
    let t = thread::spawn(move || {
        for _ in 0..100 {
            s2.take();
        }
    });
    for _ in 0..100 {
        s.put(());
    }
    t.join().unwrap();
}

#[test]
fn large_payloads_transfer_intact() {
    type Big = [u64; 64]; // 512 bytes by value
    let q: Arc<SyncDualQueue<Big>> = Arc::new(SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let t = thread::spawn(move || q2.take());
    let mut big = [0u64; 64];
    for (i, slot) in big.iter_mut().enumerate() {
        *slot = i as u64 * 3;
    }
    q.put(big);
    let got = t.join().unwrap();
    assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
}

#[test]
fn heap_owning_payloads_roundtrip() {
    let q: Arc<SyncDualStack<Vec<String>>> = Arc::new(SyncDualStack::new());
    let q2 = Arc::clone(&q);
    let t = thread::spawn(move || q2.take());
    q.put(vec!["alpha".into(), "beta".into()]);
    assert_eq!(
        t.join().unwrap(),
        vec!["alpha".to_string(), "beta".to_string()]
    );
}

#[test]
fn timed_failures_return_exact_value() {
    // The very same heap allocation must come back on timeout.
    let q: SyncDualQueue<Box<u64>> = SyncDualQueue::new();
    let boxed = Box::new(99u64);
    let addr = &*boxed as *const u64 as usize;
    let back = q
        .offer_timeout(boxed, Duration::from_millis(10))
        .unwrap_err();
    assert_eq!(*back, 99);
    assert_eq!(
        &*back as *const u64 as usize, addr,
        "value was copied/replaced"
    );
}

#[test]
fn drop_counts_balance_across_all_structures() {
    use std::sync::atomic::{AtomicIsize, Ordering};
    static LIVE: AtomicIsize = AtomicIsize::new(0);

    #[derive(Debug)]
    struct Counted(#[allow(dead_code)] u64);
    impl Counted {
        fn new(v: u64) -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Counted(v)
        }
    }
    impl Clone for Counted {
        fn clone(&self) -> Self {
            Counted::new(self.0)
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }

    {
        // Buffering structures holding values at drop time.
        let tq = TransferQueue::new();
        for i in 0..10 {
            tq.put(Counted::new(i));
        }
        let dq = DualQueue::new();
        for i in 0..10 {
            dq.enqueue(Counted::new(i));
        }
        let ds = DualStack::new();
        for i in 0..10 {
            ds.push(Counted::new(i));
        }
        drop(tq.poll());
        drop(dq.try_dequeue());
        drop(ds.try_pop());
    }
    // Epoch-deferred node frees may lag; nudge the collector.
    for _ in 0..64 {
        if LIVE.load(Ordering::SeqCst) == 0 {
            break;
        }
        let g = synq_suite::reclaim::pin();
        g.flush();
        drop(g);
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        LIVE.load(Ordering::SeqCst),
        0,
        "payload leak or double-free"
    );
}

#[test]
fn string_payload_stress_both_directions() {
    const N: usize = 800;
    let q: Arc<SyncDualQueue<String>> = Arc::new(SyncDualQueue::new());
    let q2 = Arc::clone(&q);
    let producer = thread::spawn(move || {
        for i in 0..N {
            q2.put(format!("message-{i}"));
        }
    });
    let mut lens = 0usize;
    for _ in 0..N {
        lens += q.take().len();
    }
    producer.join().unwrap();
    let expected: usize = (0..N).map(|i| format!("message-{i}").len()).sum();
    assert_eq!(lens, expected);
}
