//! Property-based tests: the synchronous queues against simple models.
//!
//! Strategy: generate random schedules (operation mixes, patience values,
//! thread counts) and check the invariants that must hold on *every*
//! execution:
//!
//! * conservation — the multiset of received values equals the multiset of
//!   values whose producers reported success;
//! * no fabrication — nothing is ever received that was not sent;
//! * single delivery — no value is received twice;
//! * bounded emptiness — after all threads quiesce, `poll` finds nothing.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use synq_suite::core::SynchronousQueue;
use synq_suite::transfer::TransferQueue;

/// Runs `producers`×`per` timed offers against one drainer; checks
/// conservation between reported-delivered and actually-received.
fn run_timed_session(fair: bool, producers: usize, per: usize, patience_us: u64) -> (usize, usize) {
    let q = Arc::new(if fair {
        SynchronousQueue::fair()
    } else {
        SynchronousQueue::unfair()
    });
    let delivered = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut handles = Vec::new();
    for p in 0..producers {
        let q = Arc::clone(&q);
        let delivered = Arc::clone(&delivered);
        handles.push(thread::spawn(move || {
            for i in 0..per {
                let v = (p * per + i) as u64;
                if q.offer_timeout(v, Duration::from_micros(patience_us))
                    .is_ok()
                {
                    delivered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }));
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drainer = {
        let q = Arc::clone(&q);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match q.poll_timeout(Duration::from_micros(200)) {
                    Some(v) => got.push(v),
                    None => {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            // Final drain of any in-flight producers.
                            while let Some(v) = q.poll_timeout(Duration::from_millis(10)) {
                                got.push(v);
                            }
                            return got;
                        }
                    }
                }
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let got = drainer.join().unwrap();

    // Single delivery + no fabrication.
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &v in &got {
        *counts.entry(v).or_default() += 1;
        assert!((v as usize) < producers * per, "fabricated value {v}");
    }
    assert!(
        counts.values().all(|&c| c == 1),
        "some value delivered twice"
    );
    (
        delivered.load(std::sync::atomic::Ordering::Relaxed),
        got.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_under_random_timeouts(
        fair in any::<bool>(),
        producers in 1usize..4,
        per in 10usize..80,
        patience_us in 1u64..500,
    ) {
        let (delivered, received) = run_timed_session(fair, producers, per, patience_us);
        prop_assert_eq!(delivered, received, "reported vs received mismatch");
    }

    #[test]
    fn transfer_queue_is_a_fifo_queue_sequentially(
        ops in proptest::collection::vec(any::<Option<u8>>(), 0..200),
    ) {
        // Single-threaded: the TransferQueue with async puts must behave
        // exactly like a VecDeque (the model).
        use std::collections::VecDeque;
        let q: TransferQueue<u8> = TransferQueue::new();
        let mut model: VecDeque<u8> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    q.put(v);
                    model.push_back(v);
                }
                None => {
                    prop_assert_eq!(q.poll(), model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain and compare the tails.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(q.poll(), Some(expect));
        }
        prop_assert_eq!(q.poll(), None);
    }

    #[test]
    fn offers_and_polls_never_succeed_unpaired(
        fair in any::<bool>(),
        rounds in 1usize..120,
    ) {
        // Sequentially, with no counterpart ever present, every offer and
        // poll must fail and the queue must stay logically empty.
        let q: SynchronousQueue<u8> = if fair {
            SynchronousQueue::fair()
        } else {
            SynchronousQueue::unfair()
        };
        for i in 0..rounds {
            prop_assert_eq!(q.offer(i as u8), Err(i as u8));
            prop_assert_eq!(q.poll(), None);
        }
        prop_assert_eq!(q.linked_nodes(), 0);
    }
}

#[test]
fn parallel_session_with_shared_ledger() {
    // A heavier, deterministic-shape session: every successful put is
    // recorded in a ledger; every take must find its value in the ledger
    // exactly once.
    const PRODUCERS: usize = 4;
    const PER: usize = 250;
    let q = Arc::new(SynchronousQueue::unfair());
    let ledger = Arc::new(Mutex::new(HashMap::<u64, usize>::new()));
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let q = Arc::clone(&q);
        let ledger = Arc::clone(&ledger);
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                let v = (p * PER + i) as u64;
                q.put(v);
                *ledger.lock().unwrap().entry(v).or_default() += 1;
            }
        }));
    }
    let consumers: Vec<_> = (0..PRODUCERS)
        .map(|_| {
            let q = Arc::clone(&q);
            thread::spawn(move || (0..PER).map(|_| q.take()).collect::<Vec<_>>())
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut all: Vec<u64> = Vec::new();
    for c in consumers {
        all.extend(c.join().unwrap());
    }
    assert_eq!(all.len(), PRODUCERS * PER);
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), PRODUCERS * PER, "duplicate delivery detected");
    let ledger = ledger.lock().unwrap();
    assert_eq!(ledger.len(), PRODUCERS * PER);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Node recycling must be invisible to the values: random-length
    /// ping-pong sessions conserve the value multiset (checked via the
    /// sum), and the allocation diagnostics must account for every node
    /// acquisition — each transfer's node came either from the allocator
    /// or from the free list, never from thin air.
    #[test]
    fn queue_node_recycling_is_value_transparent(n in 64usize..512) {
        use synq_suite::core::{SyncChannel, SyncDualQueue};
        let q = Arc::new(SyncDualQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..n {
                sum += q2.take();
            }
            sum
        });
        for i in 0..n as u64 {
            q.put(i);
        }
        prop_assert_eq!(t.join().unwrap(), (n as u64 * (n as u64 - 1)) / 2);
        // Demand is one node per transfer plus the dummy; retries may add
        // a few more. Every acquisition is either a fresh alloc or a
        // cache pop.
        prop_assert!(q.nodes_allocated() + q.nodes_recycled() > n);
    }

    #[test]
    fn stack_node_recycling_is_value_transparent(n in 64usize..512) {
        use synq_suite::core::{SyncChannel, SyncDualStack};
        let s = Arc::new(SyncDualStack::new());
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..n {
                sum += s2.take();
            }
            sum
        });
        for i in 0..n as u64 {
            s.put(i);
        }
        prop_assert_eq!(t.join().unwrap(), (n as u64 * (n as u64 - 1)) / 2);
        // Two nodes per transfer here: the waiter's and the fulfilling one.
        prop_assert!(s.nodes_allocated() + s.nodes_recycled() >= 2 * n);
    }
}
