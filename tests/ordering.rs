//! Ordering guarantees under real concurrency.
//!
//! Synchronous queues buffer nothing, so with a *single* producer the
//! values any one consumer receives must respect the producer's program
//! order — and with a single producer and single consumer, FIFO and LIFO
//! modes are indistinguishable and both must deliver in exact sequence.

use std::sync::Arc;
use std::thread;
use synq_suite::baselines::Java5SQ;
use synq_suite::core::{SyncChannel, SynchronousQueue};

fn single_pair_preserves_sequence(ch: Arc<dyn SyncChannel<u64>>, label: &str) {
    const N: u64 = 3_000;
    let ch2 = Arc::clone(&ch);
    let producer = thread::spawn(move || {
        for i in 0..N {
            ch2.put(i);
        }
    });
    for i in 0..N {
        assert_eq!(ch.take(), i, "{label}: out-of-order delivery");
    }
    producer.join().unwrap();
}

#[test]
fn single_pair_sequence_all_algorithms() {
    single_pair_preserves_sequence(Arc::new(SynchronousQueue::fair()), "new-fair");
    single_pair_preserves_sequence(Arc::new(SynchronousQueue::unfair()), "new-unfair");
    single_pair_preserves_sequence(Arc::new(Java5SQ::fair()), "java5-fair");
    single_pair_preserves_sequence(Arc::new(Java5SQ::unfair()), "java5-unfair");
}

#[test]
fn per_producer_order_with_many_consumers_fair() {
    // Fair mode with one producer, many consumers: each consumer's
    // received values must be increasing (a later take pairs with a later
    // put), which is implied by FIFO reservations + a single producer.
    const N: usize = 2_000;
    const CONSUMERS: usize = 4;
    let q: Arc<SynchronousQueue<u64>> = Arc::new(SynchronousQueue::fair());
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..(N / CONSUMERS) {
                    got.push(q.take());
                }
                got
            })
        })
        .collect();
    for i in 0..N as u64 {
        q.put(i);
    }
    let mut all = Vec::new();
    for c in consumers {
        let got = c.join().unwrap();
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "a consumer observed non-increasing values: {got:?}"
        );
        all.extend(got);
    }
    all.sort_unstable();
    assert_eq!(all, (0..N as u64).collect::<Vec<_>>());
}

#[test]
fn fan_in_order_single_consumer() {
    // Many producers, one consumer: each producer's values must appear in
    // that producer's program order within the consumer's stream.
    const PRODUCERS: usize = 4;
    const PER: usize = 500;
    let q: Arc<SynchronousQueue<(usize, usize)>> = Arc::new(SynchronousQueue::fair());
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..PER {
                    q.put((p, i));
                }
            })
        })
        .collect();
    let mut last = [None::<usize>; PRODUCERS];
    for _ in 0..PRODUCERS * PER {
        let (p, i) = q.take();
        if let Some(prev) = last[p] {
            assert!(i > prev, "producer {p}: {i} after {prev}");
        }
        last[p] = Some(i);
    }
    for t in producers {
        t.join().unwrap();
    }
}
