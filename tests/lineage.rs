//! The lineage chain, end to end: Treiber stack → nonsynchronous dual
//! stack → synchronous dual stack, and M&S queue → nonsynchronous dual
//! queue → synchronous dual queue. Each step adds exactly one capability;
//! these tests pin down the behavioural deltas the paper describes.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use synq_suite::classic::{DualQueue, DualStack, MsQueue, TreiberStack};
use synq_suite::core::{SyncChannel, SyncDualQueue, SyncDualStack, TimedSyncChannel};

/// Step 0 → 1: the classic structures are *total* — operations on the
/// empty structure fail rather than registering interest.
#[test]
fn classic_structures_have_no_reservations() {
    let stack: TreiberStack<u32> = TreiberStack::new();
    assert_eq!(stack.pop(), None); // simply fails
    let queue: MsQueue<u32> = MsQueue::new();
    assert_eq!(queue.dequeue(), None);
}

/// Step 1 → 2: dual structures give consumers first-class *reservations*
/// with the request/follow-up split of Listing 2 — and the reservation
/// order is honoured (FIFO in the queue), which the call-in-a-loop idiom
/// over a total queue cannot guarantee.
#[test]
fn dual_structures_order_reservations() {
    let q: DualQueue<u32> = DualQueue::new();
    let mut first = q.dequeue_reserve();
    let mut second = q.dequeue_reserve();
    // Values arrive later; the EARLIER request must get the EARLIER value
    // (the paper's A/B/C/D intuition in §2.2).
    q.enqueue(1);
    q.enqueue(2);
    assert_eq!(first.try_followup(), Some(1));
    assert_eq!(second.try_followup(), Some(2));
}

/// Step 1 → 2 for the stack: reservations exist, pairing is LIFO.
#[test]
fn dual_stack_reservations_pair_lifo_with_data() {
    let s: DualStack<u32> = DualStack::new();
    s.push(1);
    s.push(2);
    let mut t = s.pop_reserve();
    assert_eq!(t.try_followup(), Some(2), "top of stack first");
}

/// Step 2 → 3: the synchronous versions make *producers* wait too.
/// Nonsynchronous producers return immediately; synchronous producers
/// block until paired.
#[test]
fn synchronous_adds_producer_waiting() {
    // Nonsynchronous: enqueue returns with no consumer in sight.
    let nq: DualQueue<u32> = DualQueue::new();
    let start = Instant::now();
    nq.enqueue(1);
    assert!(start.elapsed() < Duration::from_millis(100));

    // Synchronous: put blocks until the consumer arrives.
    use std::sync::atomic::{AtomicBool, Ordering};
    let sq: Arc<SyncDualQueue<u32>> = Arc::new(SyncDualQueue::new());
    let returned = Arc::new(AtomicBool::new(false));
    let sq2 = Arc::clone(&sq);
    let r2 = Arc::clone(&returned);
    let producer = thread::spawn(move || {
        sq2.put(1);
        r2.store(true, Ordering::SeqCst);
    });
    thread::sleep(Duration::from_millis(30));
    assert!(
        !returned.load(Ordering::SeqCst),
        "synchronous put returned early"
    );
    assert_eq!(sq.take(), 1);
    producer.join().unwrap();
}

/// Step 2 → 3 adds time-out to *both* sides (the paper: "Hanson's
/// synchronous queue offers no simple way to do this").
#[test]
fn synchronous_adds_bidirectional_timeout() {
    let q: SyncDualQueue<u32> = SyncDualQueue::new();
    assert_eq!(q.offer_timeout(1, Duration::from_millis(10)), Err(1));
    assert_eq!(q.poll_timeout(Duration::from_millis(10)), None);
    let s: SyncDualStack<u32> = SyncDualStack::new();
    assert_eq!(s.offer_timeout(1, Duration::from_millis(10)), Err(1));
    assert_eq!(s.poll_timeout(Duration::from_millis(10)), None);
}

/// The §2.2 scenario verbatim: requests A then B, values 1 then 2 —
/// with dual (and synchronous-dual) queues, A gets 1 and B gets 2.
#[test]
fn paper_section_2_2_scenario() {
    // Nonsynchronous dual queue: direct ticket check.
    let q: DualQueue<u32> = DualQueue::new();
    let mut a = q.dequeue_reserve();
    let mut b = q.dequeue_reserve();
    q.enqueue(1); // C enqueues a 1
    q.enqueue(2); // D enqueues a 2
    assert_eq!(a.try_followup(), Some(1), "A's earlier call gets the 1");
    assert_eq!(b.try_followup(), Some(2), "B's later call gets the 2");

    // Synchronous dual queue: same property via blocked takers.
    let sq: Arc<SyncDualQueue<u32>> = Arc::new(SyncDualQueue::new());
    let sq_a = Arc::clone(&sq);
    let ta = thread::spawn(move || sq_a.take());
    // Deterministic arrival order: wait until A's reservation is linked.
    while sq.linked_nodes() < 1 {
        thread::yield_now();
    }
    let sq_b = Arc::clone(&sq);
    let tb = thread::spawn(move || sq_b.take());
    while sq.linked_nodes() < 2 {
        thread::yield_now();
    }
    sq.put(1);
    sq.put(2);
    assert_eq!(ta.join().unwrap(), 1);
    assert_eq!(tb.join().unwrap(), 2);
}

/// Contention-freedom, observably: a pending follow-up costs O(1) and does
/// not interfere with other threads completing transfers.
#[test]
fn pending_followups_do_not_block_progress() {
    let q: Arc<DualQueue<u32>> = Arc::new(DualQueue::new());
    let mut parked_ticket = q.dequeue_reserve();
    // With one reservation outstanding, a flood of other operations must
    // still stream through.
    // (The first enqueue will fulfill the outstanding reservation.)
    q.enqueue(0xFEED);
    for i in 0..1_000 {
        q.enqueue(i);
        assert_eq!(q.try_dequeue(), Some(i));
    }
    assert_eq!(parked_ticket.try_followup(), Some(0xFEED));
}
