//! Cross-algorithm conformance battery.
//!
//! Every synchronous queue implementation in the workspace — the paper's
//! two new algorithms, the three baselines, and the elimination variant —
//! is driven through the same behavioural checks, using trait objects so
//! the test code is identical for all of them.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use synq_suite::baselines::{HansonSQ, Java5SQ, NaiveSQ};
use synq_suite::core::{SyncChannel, SynchronousQueue, TimedSyncChannel};
use synq_suite::exchanger::EliminationSyncStack;

type Blocking = Arc<dyn SyncChannel<u64>>;
type Timed = Arc<dyn TimedSyncChannel<u64>>;

fn blocking_channels() -> Vec<(&'static str, Blocking)> {
    vec![
        ("hanson", Arc::new(HansonSQ::new())),
        ("naive", Arc::new(NaiveSQ::new())),
        ("java5-fair", Arc::new(Java5SQ::fair())),
        ("java5-unfair", Arc::new(Java5SQ::unfair())),
        ("new-fair", Arc::new(SynchronousQueue::fair())),
        ("new-unfair", Arc::new(SynchronousQueue::unfair())),
        ("new-elim", Arc::new(EliminationSyncStack::new(4))),
    ]
}

fn timed_channels() -> Vec<(&'static str, Timed)> {
    vec![
        ("java5-fair", Arc::new(Java5SQ::fair())),
        ("java5-unfair", Arc::new(Java5SQ::unfair())),
        ("new-fair", Arc::new(SynchronousQueue::fair())),
        ("new-unfair", Arc::new(SynchronousQueue::unfair())),
        ("new-elim", Arc::new(EliminationSyncStack::new(4))),
    ]
}

#[test]
fn pairwise_delivery() {
    for (name, ch) in blocking_channels() {
        let ch2 = Arc::clone(&ch);
        let t = thread::spawn(move || ch2.take());
        ch.put(42);
        assert_eq!(t.join().unwrap(), 42, "{name}");
    }
}

#[test]
fn put_blocks_until_taken() {
    for (name, ch) in blocking_channels() {
        let returned = Arc::new(AtomicBool::new(false));
        let ch2 = Arc::clone(&ch);
        let r2 = Arc::clone(&returned);
        let producer = thread::spawn(move || {
            ch2.put(7);
            r2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(25));
        assert!(
            !returned.load(Ordering::SeqCst),
            "{name}: put returned before take"
        );
        assert_eq!(ch.take(), 7, "{name}");
        producer.join().unwrap();
        assert!(returned.load(Ordering::SeqCst), "{name}");
    }
}

#[test]
fn take_blocks_until_put() {
    for (name, ch) in blocking_channels() {
        let got = Arc::new(AtomicUsize::new(usize::MAX));
        let ch2 = Arc::clone(&ch);
        let g2 = Arc::clone(&got);
        let consumer = thread::spawn(move || {
            g2.store(ch2.take() as usize, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(25));
        assert_eq!(
            got.load(Ordering::SeqCst),
            usize::MAX,
            "{name}: take returned before put"
        );
        ch.put(5);
        consumer.join().unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 5, "{name}");
    }
}

#[test]
fn exactly_once_delivery_under_load() {
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 3;
    const PER: usize = 400;
    for (name, ch) in blocking_channels() {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ch = Arc::clone(&ch);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    ch.put((p * PER + i) as u64);
                }
            }));
        }
        let seen = Arc::new(
            (0..PRODUCERS * PER)
                .map(|_| AtomicBool::new(false))
                .collect::<Vec<_>>(),
        );
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let ch = Arc::clone(&ch);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    for _ in 0..(PRODUCERS * PER / CONSUMERS) {
                        let v = ch.take() as usize;
                        assert!(
                            !seen[v].swap(true, Ordering::SeqCst),
                            "value {v} delivered twice"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert!(
            seen.iter().all(|b| b.load(Ordering::SeqCst)),
            "{name}: some value was lost"
        );
    }
}

#[test]
fn poll_and_offer_fail_fast_on_empty() {
    for (name, ch) in timed_channels() {
        let start = Instant::now();
        assert_eq!(ch.poll(), None, "{name}");
        assert_eq!(ch.offer(1), Err(1), "{name}");
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "{name}: non-blocking ops blocked for {:?}",
            start.elapsed()
        );
    }
}

#[test]
fn timed_ops_respect_patience_bounds() {
    for (name, ch) in timed_channels() {
        let start = Instant::now();
        assert_eq!(ch.poll_timeout(Duration::from_millis(40)), None, "{name}");
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(40), "{name}: woke early");
        assert!(
            waited < Duration::from_secs(5),
            "{name}: overslept ({waited:?})"
        );
        assert_eq!(
            ch.offer_timeout(9, Duration::from_millis(40)),
            Err(9),
            "{name}"
        );
    }
}

#[test]
fn offer_reaches_waiting_consumer() {
    for (name, ch) in timed_channels() {
        let ch2 = Arc::clone(&ch);
        let t = thread::spawn(move || ch2.take());
        let mut v = 11u64;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match ch.offer(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    assert!(Instant::now() < deadline, "{name}: offer never succeeded");
                    thread::yield_now();
                }
            }
        }
        assert_eq!(t.join().unwrap(), 11, "{name}");
    }
}

#[test]
fn poll_receives_waiting_producer() {
    for (name, ch) in timed_channels() {
        let ch2 = Arc::clone(&ch);
        let t = thread::spawn(move || ch2.put(13));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match ch.poll() {
                Some(v) => {
                    assert_eq!(v, 13, "{name}");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "{name}: poll never succeeded");
                    thread::yield_now();
                }
            }
        }
        t.join().unwrap();
    }
}

#[test]
fn channel_usable_after_timeouts() {
    // Timed-out operations leave cancelled nodes behind; the channel must
    // keep working normally afterwards.
    for (name, ch) in timed_channels() {
        for i in 0..20 {
            let _ = ch.offer_timeout(i, Duration::from_micros(10));
            let _ = ch.poll_timeout(Duration::from_micros(10));
        }
        let ch2 = Arc::clone(&ch);
        let t = thread::spawn(move || ch2.take());
        ch.put(77);
        assert_eq!(t.join().unwrap(), 77, "{name}");
    }
}

#[test]
fn cancellation_interrupts_both_sides() {
    use synq_suite::core::{CancelToken, Deadline, TransferOutcome};
    for (name, ch) in timed_channels() {
        // Consumer side.
        let token = CancelToken::new();
        let canceller = token.canceller();
        let ch2 = Arc::clone(&ch);
        let t = thread::spawn(move || ch2.take_with(Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(None) => {}
            other => panic!("{name}: expected Cancelled take, got {other:?}"),
        }
        // Producer side (gets the item back).
        let token = CancelToken::new();
        let canceller = token.canceller();
        let ch2 = Arc::clone(&ch);
        let t = thread::spawn(move || ch2.put_with(55, Deadline::Never, Some(&token)));
        thread::sleep(Duration::from_millis(20));
        canceller.cancel();
        match t.join().unwrap() {
            TransferOutcome::Cancelled(Some(55)) => {}
            other => panic!("{name}: expected Cancelled(55) put, got {other:?}"),
        }
    }
}

#[test]
fn no_stranded_pairs_under_exact_ticket_counts() {
    // Regression test: an early Java5SQ port popped the counterpart list
    // and pushed onto its own list under *separate* entry-lock
    // acquisitions, admitting a race where a producer and a consumer both
    // observe "empty" and both enqueue — stranding the final pair forever
    // once no further arrivals occur. With exact ticket counts (as in the
    // benchmark harness) the hang is reliably reachable. The fix performs
    // pop-or-push under one lock hold, as in the paper's Listing 4.
    const TRANSFERS: usize = 3_000;
    const SIDES: usize = 4;
    for (name, ch) in blocking_channels() {
        let put_tickets = Arc::new(AtomicUsize::new(0));
        let take_tickets = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..SIDES {
            let ch = Arc::clone(&ch);
            let tickets = Arc::clone(&put_tickets);
            handles.push(thread::spawn(move || loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= TRANSFERS {
                    break;
                }
                ch.put(i as u64);
            }));
        }
        for _ in 0..SIDES {
            let ch = Arc::clone(&ch);
            let tickets = Arc::clone(&take_tickets);
            handles.push(thread::spawn(move || loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= TRANSFERS {
                    break;
                }
                let _ = ch.take();
            }));
        }
        for h in handles {
            h.join().unwrap(); // a stranded pair hangs here
        }
        let _ = name;
    }
}
