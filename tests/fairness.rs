//! Pairing-order semantics: fair implementations must pair FIFO, the
//! stack-based ones LIFO. This is the externally observable difference
//! between the paper's two algorithms.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use synq_suite::baselines::Java5SQ;
use synq_suite::core::{SyncChannel, SyncDualQueue, SyncDualStack};

/// Spawns `n` producers in a deterministic arrival order, waiting until
/// each is visibly enqueued before starting the next, then collects the
/// order in which a single consumer pairs with them.
fn pairing_order<C, W>(channel: Arc<C>, n: u32, waiters_linked: W) -> Vec<u32>
where
    C: SyncChannel<u32> + 'static + ?Sized,
    W: Fn(&C) -> usize,
{
    let mut producers = Vec::new();
    for i in 0..n {
        let ch = Arc::clone(&channel);
        producers.push(thread::spawn(move || ch.put(i)));
        let deadline = Instant::now() + Duration::from_secs(30);
        while waiters_linked(&channel) < (i + 1) as usize {
            assert!(Instant::now() < deadline, "producer {i} never enqueued");
            thread::yield_now();
        }
    }
    let order: Vec<u32> = (0..n).map(|_| channel.take()).collect();
    for p in producers {
        p.join().unwrap();
    }
    order
}

#[test]
fn dual_queue_pairs_fifo() {
    let q = Arc::new(SyncDualQueue::new());
    let order = pairing_order(q, 6, |q| q.linked_nodes());
    assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn dual_stack_pairs_lifo() {
    let s = Arc::new(SyncDualStack::new());
    let order = pairing_order(s, 6, |s| s.linked_nodes());
    assert_eq!(order, vec![5, 4, 3, 2, 1, 0]);
}

#[test]
fn fifo_holds_with_interleaved_consumption() {
    // Consume between arrivals: order must still follow arrival order.
    let q = Arc::new(SyncDualQueue::new());
    let mut producers = Vec::new();
    for i in 0..3u32 {
        let q2 = Arc::clone(&q);
        producers.push(thread::spawn(move || q2.put(i)));
        while q.linked_nodes() < (i + 1) as usize {
            thread::yield_now();
        }
    }
    assert_eq!(q.take(), 0);
    // Two more arrive after one consumption.
    for i in 3..5u32 {
        let q2 = Arc::clone(&q);
        producers.push(thread::spawn(move || q2.put(i)));
        while q.linked_nodes() < i as usize {
            thread::yield_now();
        }
    }
    assert_eq!(q.take(), 1);
    assert_eq!(q.take(), 2);
    assert_eq!(q.take(), 3);
    assert_eq!(q.take(), 4);
    for p in producers {
        p.join().unwrap();
    }
}

#[test]
fn fifo_survives_a_timed_out_waiter_in_between() {
    use synq_suite::core::TimedSyncChannel;
    let q: Arc<SyncDualQueue<u32>> = Arc::new(SyncDualQueue::new());
    // First producer waits; second times out; third waits.
    let q1 = Arc::clone(&q);
    let p1 = thread::spawn(move || q1.put(1));
    while q.linked_nodes() < 1 {
        thread::yield_now();
    }
    assert_eq!(q.offer_timeout(2, Duration::from_millis(20)), Err(2));
    let q3 = Arc::clone(&q);
    let p3 = thread::spawn(move || q3.put(3));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        // 1 live waiter + possibly the cancelled node, then 2 live.
        let n = q.linked_nodes();
        if n >= 2 {
            break;
        }
        assert!(Instant::now() < deadline);
        thread::yield_now();
    }
    // The cancelled producer must be skipped: 1 then 3.
    assert_eq!(q.take(), 1);
    assert_eq!(q.take(), 3);
    p1.join().unwrap();
    p3.join().unwrap();
}

#[test]
fn java5_fair_pairs_fifo_java5_unfair_lifo() {
    // Cross-check the baseline (uses its own wait-list length; we rely on
    // deterministic arrival via short sleeps instead of introspection).
    for (fair, expect) in [(true, vec![0, 1, 2, 3]), (false, vec![3, 2, 1, 0])] {
        let q = Arc::new(Java5SQ::with_mode(fair));
        let mut producers = Vec::new();
        for i in 0..4u32 {
            let q2 = Arc::clone(&q);
            producers.push(thread::spawn(move || q2.put(i)));
            // Arrival order must be deterministic: give each producer time
            // to enqueue before the next starts.
            thread::sleep(Duration::from_millis(30));
        }
        let order: Vec<u32> = (0..4).map(|_| q.take()).collect();
        assert_eq!(order, expect, "fair={fair}");
        for p in producers {
            p.join().unwrap();
        }
    }
}
