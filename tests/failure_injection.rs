//! Failure injection: random timeouts and asynchronous cancellations under
//! load, with drop-counting payloads to detect leaks and double-frees.

use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use synq_suite::core::{
    CancelToken, Deadline, SynchronousQueue, TimedSyncChannel, TransferOutcome,
};

/// Payload that counts creations and drops globally per test run.
struct Tracked {
    _payload: [u8; 24],
    live: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(live: &Arc<AtomicUsize>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Tracked {
            _payload: [0xAB; 24],
            live: Arc::clone(live),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

fn chaos_session(fair: bool) {
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 3;
    const OPS: usize = 400;

    let live = Arc::new(AtomicUsize::new(0));
    let q: Arc<SynchronousQueue<Tracked>> = Arc::new(if fair {
        SynchronousQueue::fair()
    } else {
        SynchronousQueue::unfair()
    });
    let token = CancelToken::new();
    let canceller = token.canceller();
    let received = Arc::new(AtomicUsize::new(0));
    let delivered = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for _ in 0..PRODUCERS {
        let q = Arc::clone(&q);
        let live = Arc::clone(&live);
        let token = token.clone();
        let delivered = Arc::clone(&delivered);
        handles.push(thread::spawn(move || {
            let mut rng = rand::thread_rng();
            for _ in 0..OPS {
                let item = Tracked::new(&live);
                let deadline = match rng.gen_range(0..3) {
                    0 => Deadline::Now,
                    1 => Deadline::after(Duration::from_micros(rng.gen_range(1..400))),
                    _ => Deadline::after(Duration::from_millis(5)),
                };
                match q.put_with(item, deadline, Some(&token)) {
                    TransferOutcome::Transferred(_) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    TransferOutcome::Timeout(item) | TransferOutcome::Cancelled(item) => {
                        drop(item); // item returned to us; drop it here
                    }
                }
            }
        }));
    }
    for _ in 0..CONSUMERS {
        let q = Arc::clone(&q);
        let token = token.clone();
        let received = Arc::clone(&received);
        handles.push(thread::spawn(move || {
            let mut rng = rand::thread_rng();
            for _ in 0..OPS {
                let deadline = match rng.gen_range(0..3) {
                    0 => Deadline::Now,
                    1 => Deadline::after(Duration::from_micros(rng.gen_range(1..400))),
                    _ => Deadline::after(Duration::from_millis(5)),
                };
                if let TransferOutcome::Transferred(Some(item)) =
                    q.take_with(deadline, Some(&token))
                {
                    received.fetch_add(1, Ordering::Relaxed);
                    drop(item);
                }
            }
        }));
    }

    // Let chaos run briefly, then interrupt everyone mid-flight.
    thread::sleep(Duration::from_millis(60));
    canceller.cancel();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(
        delivered.load(Ordering::SeqCst),
        received.load(Ordering::SeqCst),
        "every successfully transferred item must be received exactly once"
    );

    // Leak check: drop the queue (frees any cancelled nodes still linked);
    // epoch-deferred frees may lag, so nudge the collector.
    drop(q);
    for _ in 0..64 {
        if live.load(Ordering::SeqCst) == 0 {
            break;
        }
        let g = synq_suite::reclaim::pin();
        g.flush();
        drop(g);
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "payloads leaked or double-freed (negative would have panicked the counter)"
    );
}

#[test]
fn chaos_fair() {
    chaos_session(true);
}

#[test]
fn chaos_unfair() {
    chaos_session(false);
}

#[test]
fn repeated_cancel_storms_leave_channel_usable() {
    let q: Arc<SynchronousQueue<u64>> = Arc::new(SynchronousQueue::fair());
    for round in 0..10 {
        let token = CancelToken::new();
        let canceller = token.canceller();
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let token = token.clone();
            waiters.push(thread::spawn(move || {
                q.take_with(Deadline::Never, Some(&token))
            }));
        }
        thread::sleep(Duration::from_millis(10));
        canceller.cancel();
        for w in waiters {
            match w.join().unwrap() {
                TransferOutcome::Cancelled(None) => {}
                TransferOutcome::Transferred(_) => panic!("round {round}: spurious transfer"),
                other => panic!("round {round}: unexpected {other:?}"),
            }
        }
        // Channel still fully functional.
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.take());
        q.put(round);
        assert_eq!(t.join().unwrap(), round);
    }
}

#[test]
fn executor_survives_cancellation_mid_burst() {
    use synq_suite::executor::{PoolConfig, ThreadPool};
    let pool = ThreadPool::new(
        Arc::new(SynchronousQueue::unfair()),
        PoolConfig {
            core_pool_size: 0,
            max_pool_size: 16,
            keep_alive: Duration::from_millis(50),
        },
    );
    let done = Arc::new(AtomicUsize::new(0));
    let mut accepted = 0usize;
    for _ in 0..200 {
        let done = Arc::clone(&done);
        if pool
            .execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .is_ok()
        {
            accepted += 1;
        }
    }
    // Shut down while some tasks may still be in flight; join must not
    // hang and every accepted task must have run (shutdown only interrupts
    // *idle* workers).
    while done.load(Ordering::Relaxed) < accepted {
        thread::yield_now();
    }
    pool.shutdown();
    pool.join();
    assert_eq!(done.load(Ordering::Relaxed), accepted);
}

/// Node-recycling churn: far more handoffs than the free list can hold, so
/// every skeleton is reused many times over — with timed failures mixed in
/// so recycled nodes also pass through the cancelled state carrying an
/// *unconsumed* item. Each payload must drop exactly once: a recycled node
/// whose item slot was not moved out (or not cleared before reuse) shows up
/// here as a leak or a double-free.
fn recycling_churn(fair: bool) {
    const OPS: usize = 3_000;
    let live = Arc::new(AtomicUsize::new(0));
    let q: Arc<SynchronousQueue<Tracked>> = Arc::new(if fair {
        SynchronousQueue::fair()
    } else {
        SynchronousQueue::unfair()
    });
    let delivered = Arc::new(AtomicUsize::new(0));

    let producer = {
        let q = Arc::clone(&q);
        let live = Arc::clone(&live);
        let delivered = Arc::clone(&delivered);
        thread::spawn(move || {
            for i in 0..OPS {
                let item = Tracked::new(&live);
                if i % 8 == 0 {
                    // Mostly-failing timed offer: leaves a cancelled node
                    // (item still aboard) for the recycler to clean up.
                    match q.offer_timeout(item, Duration::from_micros(1)) {
                        Ok(()) => {
                            delivered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(item) => drop(item),
                    }
                } else {
                    q.put(item);
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drainer = {
        let q = Arc::clone(&q);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut got = 0usize;
            loop {
                match q.poll_timeout(Duration::from_micros(300)) {
                    Some(item) => {
                        got += 1;
                        drop(item);
                    }
                    None => {
                        if stop.load(Ordering::Acquire) {
                            return got;
                        }
                    }
                }
            }
        })
    };

    producer.join().unwrap();
    stop.store(true, Ordering::Release);
    let received = drainer.join().unwrap();
    assert_eq!(
        delivered.load(Ordering::SeqCst),
        received,
        "every delivered item must come out exactly once despite node reuse"
    );

    // The free list must drain fully on drop: once the queue and all
    // epoch-deferred releases are gone, every payload has dropped.
    drop(q);
    for _ in 0..64 {
        if live.load(Ordering::SeqCst) == 0 {
            break;
        }
        let g = synq_suite::reclaim::pin();
        g.flush();
        drop(g);
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "payloads leaked through the node cache (double-frees would have underflowed)"
    );
}

#[test]
fn recycling_churn_fair() {
    recycling_churn(true);
}

#[test]
fn recycling_churn_unfair() {
    recycling_churn(false);
}
