//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its `[[bench]]` targets use: benchmark
//! groups, [`BenchmarkId`], and [`Bencher::iter`]/[`Bencher::iter_custom`].
//! Instead of criterion's statistical sampling it runs each benchmark a
//! small fixed number of iterations and prints one `ns/iter` line — enough
//! for `cargo bench` to produce comparable smoke numbers without the heavy
//! dependency tree. `SYNQ_CRITERION_ITERS` overrides the iteration count.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

/// Measurement driver handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time `iters` iterations itself and report the total
    /// duration (used when per-iteration setup must be excluded).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this subset.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is skipped in this subset.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with a borrowed input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = std::env::var("SYNQ_CRITERION_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3u64);
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        let ns = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
        println!("{}/{}/{}: {ns:.0} ns/iter", self.name, id.name, id.param);
        self
    }

    /// Ends the group (prints nothing in this subset).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5).warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("iter", 1), &(), |b, _| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("custom", 2), &(), |b, _| {
            b.iter_custom(|iters| {
                ran += iters;
                Duration::from_nanos(42 * iters)
            })
        });
        g.finish();
        assert!(ran >= 6);
    }
}
