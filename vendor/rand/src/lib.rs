//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: [`thread_rng`] and
//! [`Rng::gen_range`] over half-open and inclusive integer ranges. The
//! generator is a per-thread SplitMix64 seeded from the system clock and a
//! process-global counter — statistically fine for randomized tests and
//! benchmark slot picking, and deliberately **not** cryptographic.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of random bits, mirroring the subset of `rand::Rng` this
/// workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value from `range`.
    ///
    /// Supports `lo..hi` and `lo..=hi` over the primitive integer types.
    /// Parameterizing [`SampleRange`] by the output type (rather than using
    /// an associated type) lets integer literals infer from the call site,
    /// matching real `rand` (`Duration::from_micros(rng.gen_range(1..400))`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self.next_u64())
    }
}

/// A range that [`Rng::gen_range`] can sample `T` from.
pub trait SampleRange<T> {
    /// Maps 64 uniform bits onto the range.
    fn sample(self, raw: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, raw: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (raw as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, raw: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// SplitMix64 step: full-period, passes BigCrush as a mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-thread random generator handle (mirror of `rand::rngs::ThreadRng`).
#[derive(Debug, Clone)]
pub struct ThreadRng;

thread_local! {
    static STATE: Cell<u64> = const { Cell::new(0) };
}

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x243F_6A88_85A3_08D3);

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        STATE.with(|s| {
            let mut state = s.get();
            if state == 0 {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0xDEAD_BEEF);
                state = nanos
                    ^ SEED_COUNTER
                        .fetch_add(0x9E37_79B9, Ordering::Relaxed)
                        .rotate_left(17);
                if state == 0 {
                    state = 0x5851_F42D_4C95_7F2D;
                }
            }
            let out = splitmix64(&mut state);
            s.set(state);
            out
        })
    }
}

/// Returns the calling thread's random generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = thread_rng();
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let z = rng.gen_range(0u64..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn output_varies() {
        let mut rng = thread_rng();
        let first = rng.next_u64();
        assert!((0..64).any(|_| rng.next_u64() != first));
    }
}
