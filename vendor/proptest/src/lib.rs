//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its tests use: the [`proptest!`] macro,
//! [`Strategy`] over integer ranges / [`any`] / [`Just`] /
//! [`prop_oneof!`] unions / [`collection::vec`], and the
//! `prop_assert*` macros. Generation is deterministic per (test name, case
//! index) via SplitMix64, so failures reproduce across runs. Shrinking is
//! intentionally not implemented — a failing case panics with its inputs'
//! case index instead.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one case of one property, seeded from the
    /// test name and case index so runs are reproducible.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng { state: h | 1 }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot generate from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain generation strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        // Bias toward Some so model tests exercise real payload flow, while
        // keeping a healthy fraction of the None control-path cases.
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// Strategy over a type's whole [`Arbitrary`] domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the whole-domain strategy for `T` (use as `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Combinator strategies (the target of [`prop_oneof!`]).
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice between boxed alternatives of a common value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with element strategy and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` (e.g. `0..300`)
    /// and whose elements are drawn from `elem`. The concrete
    /// `Range<usize>` parameter (real proptest's `SizeRange`) is what makes
    /// bare integer literals at call sites infer as `usize`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// A failed property assertion, carried to the runner as an `Err`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a proptest-style test file imports with one glob.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l, r, stringify!($left), stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l, r, format!($($fmt)+),
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honour their bounds; vec lengths honour theirs.
        #[test]
        fn generated_values_in_bounds(
            n in 1usize..7,
            v in proptest::collection::vec(any::<Option<u16>>(), 0..20),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..7).contains(&n), "n out of bounds: {}", n);
            prop_assert!(v.len() < 20);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn oneof_picks_only_listed_values(x in prop_oneof![Just(1u8), Just(9u8)]) {
            prop_assert!(x == 1 || x == 9);
        }
    }

    // The macro refers to the crate as `$crate`, but test files name it by
    // path too — mimic that here so the path form stays covered.
    use crate as proptest;
}
